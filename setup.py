"""Setuptools shim.

This environment has no ``wheel`` package (and no network to fetch one), so
PEP 660 editable installs (``pip install -e .``) fail while building the
editable wheel. ``python setup.py develop`` installs the same editable
package using setuptools alone. All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
