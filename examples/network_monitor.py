"""Distributed network monitoring: detect hot flows across edge routers.

The motivating application from the paper's introduction (network anomaly
detection): K edge routers each see part of the traffic; a NOC coordinator
must know, at all times, which source addresses exceed a fraction phi of
total traffic — e.g. to spot a DDoS source — without shipping every packet.

The scenario below runs three phases (normal traffic, an attack ramping up,
mitigation) and shows the coordinator's live heavy-hitter set reacting,
plus the communication saved versus naive forwarding.

Run:  python examples/network_monitor.py
"""

import numpy as np

from repro import HeavyHitterProtocol, TrackingParams
from repro.common.rng import make_rng

UNIVERSE = 1 << 20  # source address space
ROUTERS = 12
EPS = 0.01
PHI = 0.05
ATTACKER = 0xBAD00 % UNIVERSE + 1


def phase_traffic(rng, n, attack_fraction):
    """Background flows plus an attacker sending `attack_fraction` of load."""
    background = rng.integers(1, UNIVERSE + 1, size=n)
    attack = rng.random(size=n) < attack_fraction
    background[attack] = ATTACKER
    return background


def main() -> None:
    rng = make_rng(2024)
    protocol = HeavyHitterProtocol(
        TrackingParams(num_sites=ROUTERS, epsilon=EPS, universe_size=UNIVERSE)
    )
    phases = [
        ("normal traffic", 40_000, 0.00),
        ("attack ramps up", 30_000, 0.30),
        ("mitigation, attacker diluting", 100_000, 0.01),
        ("back to normal", 200_000, 0.001),
    ]
    packets = 0
    for label, n, attack_fraction in phases:
        items = phase_traffic(rng, n, attack_fraction)
        # Hash flows to routers: all packets of one source hit one router —
        # the hardest assignment for per-item triggers.
        routers = (items * 2654435761 % ROUTERS).astype(np.int64)
        for router, item in zip(routers.tolist(), items.tolist()):
            protocol.process(router, item)
        packets += n
        hot = protocol.heavy_hitters(PHI)
        alert = "ALERT: " + hex(ATTACKER) if ATTACKER in hot else "all clear"
        print(
            f"[{label:>28}] packets={packets:>7,}  "
            f"hot flows={len(hot):>2}  {alert}"
        )
    words = protocol.stats.words
    print(
        f"\ncommunication: {words:,} words total "
        f"({words / packets:.4f} words/packet; naive forwarding = 2.0)"
    )
    print(
        f"detection guarantee: every source above {PHI:.0%} of traffic is "
        f"reported, nothing below {PHI - EPS:.0%} ever is — at all times."
    )


if __name__ == "__main__":
    main()
