"""Quickstart: the three tracking protocols in thirty lines each.

Run:  python examples/quickstart.py
"""

from repro import (
    AllQuantilesProtocol,
    HeavyHitterProtocol,
    QuantileProtocol,
    TrackingParams,
)
from repro.workloads import make_stream, round_robin_partitioner, zipf_stream

UNIVERSE = 1 << 16
K = 8  # remote sites
EPS = 0.02  # approximation error
N = 50_000  # stream length


def main() -> None:
    # A Zipf-skewed stream split across K sites.
    stream = make_stream(
        zipf_stream, round_robin_partitioner, N, UNIVERSE, K, seed=0, skew=1.2
    )

    # -- 1. Heavy hitters (Theorem 2.1) ----------------------------------
    hh = HeavyHitterProtocol(TrackingParams(K, EPS, UNIVERSE))
    hh.process_stream(stream)
    print("phi=0.05 heavy hitters:", sorted(hh.heavy_hitters(phi=0.05)))
    print(
        f"  communication: {hh.stats.messages:,} messages, "
        f"{hh.stats.words:,} words (naive forwarding would be {2 * N:,})"
    )

    # -- 2. A single quantile: the median (Theorem 3.1) ------------------
    median = QuantileProtocol(TrackingParams(K, EPS, UNIVERSE), phi=0.5)
    median.process_stream(stream)
    print(f"approximate median: {median.quantile()}")
    print(
        f"  communication: {median.stats.words:,} words across "
        f"{median.rounds_completed} rounds"
    )

    # -- 3. All quantiles at once (Theorem 4.1) --------------------------
    allq = AllQuantilesProtocol(TrackingParams(K, 0.05, UNIVERSE))
    allq.process_stream(stream)
    for phi in (0.25, 0.5, 0.9, 0.99):
        print(f"  p{int(phi * 100):02d} = {allq.quantile(phi)}")
    print(
        f"  one structure answers every phi; {allq.stats.words:,} words, "
        f"tree has {len(allq.tree.leaves())} leaves"
    )


if __name__ == "__main__":
    main()
