"""The lower-bound machinery, played out interactively.

Reproduces the two halves of Theorem 2.4's proof as runnable games:

1. Lemma 2.2 — a stream that forces the heavy-hitter set to keep changing
   (Theta(log n / eps) times), so *any* correct tracker must keep reacting.
2. Lemma 2.3 — the threshold game: a correct detector's per-site silence
   budgets must sum below the transition batch, so an adversary who always
   feeds the most-exhausted site forces Omega(k) messages; a detector that
   cheats on the budget stays silent but misses the change.

Run:  python examples/lower_bound_game.py
"""

from repro.lowerbounds import (
    CheatingDetector,
    CorrectDetector,
    count_heavy_hitter_changes,
    lemma22_stream,
    play_adversarial,
    play_spread,
)

GROUP = 4
PHI = 0.13


def main() -> None:
    print("-- Lemma 2.2: a stream with ever-changing heavy hitters --")
    items, windows, epsilon = lemma22_stream(GROUP, PHI, n_target=60_000)
    changes = count_heavy_hitter_changes(items, PHI, epsilon)
    print(
        f"n={len(items):,}, eps={epsilon:.4f}: the phi={PHI} heavy-hitter "
        f"set changed {changes} times across {len(windows)} windows."
    )
    print("Each change must be noticed by any correct tracker.\n")

    print("-- Lemma 2.3: the threshold game (one change, batch=4096) --")
    batch = 4096
    print(f"{'k':>4}  {'adversary':>10}  {'spread':>7}  {'cheater':>8}")
    for k in (4, 8, 16, 32, 64):
        adversarial = play_adversarial(CorrectDetector(k, batch), batch)
        spread = play_spread(CorrectDetector(k, batch), batch)
        cheater = play_adversarial(CheatingDetector(k, batch), batch)
        missed = "" if cheater.change_detected else "(missed the change!)"
        print(
            f"{k:>4}  {adversarial.messages:>10}  {spread.messages:>7}  "
            f"{cheater.messages:>8}  {missed}"
        )
    print(
        "\nThe adversary forces ~k messages per change from every correct\n"
        "detector; staying silent is only possible by missing the change.\n"
        "Combined: Omega(k) x Omega(log n / eps) = Omega(k/eps log n)."
    )


if __name__ == "__main__":
    main()
