"""Visualizing when the protocols actually talk.

The paper's cost bounds come from a round structure: rebuild bursts at
geometrically spaced stream positions with a trickle of counter updates in
between. This example replays the same stream through all three protocols
plus the naive baseline and prints a words-per-interval sparkline for each,
making that structure visible.

Run:  python examples/communication_timeline.py
"""

from repro import (
    AllQuantilesProtocol,
    HeavyHitterProtocol,
    NaiveForwardProtocol,
    QuantileProtocol,
    TrackingParams,
)
from repro.harness.timeline import record_timeline, render_timeline
from repro.workloads import make_stream, round_robin_partitioner, zipf_stream

UNIVERSE = 1 << 16
K = 8
N = 60_000


def main() -> None:
    stream = make_stream(
        zipf_stream, round_robin_partitioner, N, UNIVERSE, K, seed=1, skew=1.2
    )
    protocols = [
        ("heavy hitters  (eps=0.02)", HeavyHitterProtocol(
            TrackingParams(K, 0.02, UNIVERSE))),
        ("median         (eps=0.02)", QuantileProtocol(
            TrackingParams(K, 0.02, UNIVERSE), phi=0.5)),
        ("all quantiles  (eps=0.05)", AllQuantilesProtocol(
            TrackingParams(K, 0.05, UNIVERSE))),
        ("naive forward", NaiveForwardProtocol(
            TrackingParams(K, 0.02, UNIVERSE))),
    ]
    for label, protocol in protocols:
        points = record_timeline(protocol, stream, samples=72)
        print(f"-- {label}")
        print(render_timeline(points))
        print()
    print(
        "Note the geometric spacing of the tracking protocols' bursts\n"
        "(round rebuilds every time |A| grows by a constant factor) against\n"
        "the naive baseline's flat 2-words-per-item wall."
    )


if __name__ == "__main__":
    main()
