"""Sensor-network latency percentiles with distribution drift.

The paper's other motivating application (sensor network monitoring): K
gateways each collect latency readings; the base station must continuously
expose an equal-height histogram — p50/p90/p99 at any moment — while the
underlying latency distribution drifts (e.g. congestion building up).

Uses the all-quantiles protocol (§4): one structure, every percentile,
error ε at all times, O(k/ε·log n·log²(1/ε)) total words.

Run:  python examples/sensor_percentiles.py
"""

import numpy as np

from repro import AllQuantilesProtocol, ExactTracker, TrackingParams
from repro.common.rng import make_rng

UNIVERSE = 50_000  # latency in microseconds
GATEWAYS = 6
EPS = 0.05


def latency_phase(rng, n, base_us, tail_scale):
    """Log-normal-ish latencies around base_us with a heavy tail."""
    body = rng.lognormal(mean=np.log(base_us), sigma=0.4, size=n)
    spikes = rng.random(size=n) < 0.02
    body[spikes] *= tail_scale
    return np.clip(np.rint(body), 1, UNIVERSE).astype(np.int64)


def main() -> None:
    rng = make_rng(7)
    protocol = AllQuantilesProtocol(
        TrackingParams(num_sites=GATEWAYS, epsilon=EPS, universe_size=UNIVERSE)
    )
    oracle = ExactTracker(UNIVERSE)  # ground truth, for the demo printout
    phases = [
        ("healthy", 30_000, 800, 5),
        ("congestion building", 30_000, 2_500, 8),
        ("recovered", 40_000, 900, 5),
    ]
    print(f"{'phase':>22}  {'p50':>7} {'p90':>7} {'p99':>7}   (exact p99)")
    for label, n, base_us, tail in phases:
        readings = latency_phase(rng, n, base_us, tail)
        gateways = rng.integers(0, GATEWAYS, size=n)
        for gateway, reading in zip(gateways.tolist(), readings.tolist()):
            protocol.process(gateway, reading)
            oracle.update(reading)
        p50, p90, p99 = (protocol.quantile(phi) for phi in (0.5, 0.9, 0.99))
        print(
            f"{label:>22}  {p50:>6}us {p90:>6}us {p99:>6}us   "
            f"({oracle.quantile(0.99)}us)"
        )
    total = oracle.total
    print(
        f"\n{total:,} readings; {protocol.stats.words:,} words of "
        f"communication ({protocol.stats.words / total:.4f} words/reading; "
        f"naive forwarding = 2.0)"
    )
    print(
        "tracking cost grows only logarithmically in the stream length "
        "(Thm 4.1),\nso the per-reading cost keeps falling as the "
        "deployment runs — naive stays at 2.0 forever."
    )
    worst = max(
        oracle.quantile_rank_offset(protocol.quantile(phi), phi)
        for phi in np.linspace(0.01, 0.99, 25)
    )
    print(f"worst rank error across 25 percentiles: {worst:.4f} (eps={EPS})")
    print(
        "(extreme-tail values like the p99 look coarse because the last "
        "Theta(eps*m)\nitems share one tree leaf — the guarantee is on "
        "*rank*, and it holds.)"
    )


if __name__ == "__main__":
    main()
