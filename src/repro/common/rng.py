"""Deterministic random-number plumbing.

Every stochastic component in the library takes a ``numpy.random.Generator``
rather than touching global state, so experiments replay bit-for-bit from a
single seed.
"""

from __future__ import annotations

import numpy as np


def make_rng(seed: int | None = 0) -> np.random.Generator:
    """Create a generator from a seed (``None`` draws OS entropy)."""
    return np.random.default_rng(seed)


def spawn_rngs(seed: int, count: int) -> list[np.random.Generator]:
    """Derive ``count`` statistically independent generators from one seed.

    Uses ``SeedSequence.spawn`` so children never overlap even for adjacent
    seeds; used to give each simulated site its own stream of randomness.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count!r}")
    seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(count)]
