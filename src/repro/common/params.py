"""Common parameter bundle shared by all tracking protocols."""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.validation import (
    require_epsilon,
    require_site_count,
    require_universe,
)


@dataclass(frozen=True)
class TrackingParams:
    """Configuration shared by every continuous-tracking protocol.

    Attributes:
        num_sites: ``k``, the number of remote sites.
        epsilon: the approximation error ``ε`` in ``(0, 1)``.
        universe_size: ``u``; items are integers in ``{1..u}``.
    """

    num_sites: int
    epsilon: float
    universe_size: int = 1 << 20

    def __post_init__(self) -> None:
        require_site_count(self.num_sites)
        require_epsilon(self.epsilon)
        if self.universe_size < 1:
            require_universe(1, self.universe_size)  # raises

    @property
    def k(self) -> int:
        """Alias matching the paper's notation."""
        return self.num_sites

    @property
    def warmup_items(self) -> int:
        """Items forwarded verbatim before the protocol state initialises.

        The paper assumes the system starts once ``m = k/ε``; before that,
        every arrival is simply relayed to the coordinator (§2.1).
        """
        return max(1, int(self.num_sites / self.epsilon))
