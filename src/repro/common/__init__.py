"""Shared utilities: exceptions, parameter objects, validation, and RNG plumbing."""

from repro.common.errors import (
    ConfigurationError,
    ProtocolError,
    ReproError,
    UniverseError,
)
from repro.common.params import TrackingParams
from repro.common.rng import make_rng, spawn_rngs
from repro.common.validation import (
    require_epsilon,
    require_phi,
    require_positive,
    require_universe,
)

__all__ = [
    "ConfigurationError",
    "ProtocolError",
    "ReproError",
    "UniverseError",
    "TrackingParams",
    "make_rng",
    "spawn_rngs",
    "require_epsilon",
    "require_phi",
    "require_positive",
    "require_universe",
]
