"""Exception hierarchy for the library.

All exceptions raised intentionally by this package derive from
:class:`ReproError`, so callers can catch one type at an API boundary.
"""


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """Invalid protocol or experiment configuration (bad ``ε``, ``φ``, ``k``...)."""


class UniverseError(ReproError):
    """An item fell outside the declared universe ``{1..u}``."""


class ProtocolError(ReproError):
    """A protocol invariant was violated at runtime.

    This indicates a bug in the protocol implementation (or a corrupted
    simulation), never a user error; it is raised by internal self-checks.
    """


class CommunicationError(ReproError):
    """A message was malformed or sent to an unknown endpoint."""
