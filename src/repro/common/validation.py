"""Parameter validation helpers shared by protocols and workloads.

Each helper raises :class:`~repro.common.errors.ConfigurationError` with a
message naming the offending parameter, so configuration mistakes surface
immediately at construction time rather than deep inside a simulation.
"""

from __future__ import annotations

from repro.common.errors import ConfigurationError, UniverseError


def require_positive(value: float, name: str) -> None:
    """Raise unless ``value`` is strictly positive."""
    if value <= 0:
        raise ConfigurationError(f"{name} must be positive, got {value!r}")


def require_epsilon(epsilon: float) -> None:
    """Validate an approximation parameter ``ε`` in ``(0, 1)``."""
    if not 0 < epsilon < 1:
        raise ConfigurationError(f"epsilon must be in (0, 1), got {epsilon!r}")


def require_phi(phi: float, epsilon: float | None = None) -> None:
    """Validate a heavy-hitter/quantile fraction ``φ`` in ``[0, 1]``.

    When ``epsilon`` is given, additionally require ``φ > ε`` — a φ-heavy
    hitter query with ``φ ≤ ε`` is vacuous (every item qualifies within the
    allowed error).
    """
    if not 0 <= phi <= 1:
        raise ConfigurationError(f"phi must be in [0, 1], got {phi!r}")
    if epsilon is not None and phi <= epsilon:
        raise ConfigurationError(
            f"phi must exceed epsilon for a meaningful query, got phi={phi!r} "
            f"epsilon={epsilon!r}"
        )


def require_universe(item: int, universe_size: int) -> None:
    """Raise unless ``item`` lies in the universe ``{1..universe_size}``."""
    if not 1 <= item <= universe_size:
        raise UniverseError(
            f"item {item!r} outside universe [1, {universe_size}]"
        )


def require_site_count(k: int) -> None:
    """Validate the number of remote sites (the paper assumes ``k ≥ 2``).

    We accept ``k ≥ 1`` so the degenerate single-stream case can be tested,
    but reject non-positive values.
    """
    if k < 1:
        raise ConfigurationError(f"number of sites k must be >= 1, got {k!r}")
