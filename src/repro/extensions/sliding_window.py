"""Jumping-window tracking: the §5 open problem, relaxed the standard way.

The paper's protocols track statistics of *everything seen so far*; §5
poses sliding-window tracking as an open problem (it still largely is, for
optimal bounds). This module implements the classical *jumping window*
relaxation on top of any of the paper's protocols:

* keep two staggered protocol instances, restarted every ``window/2``
  arrivals;
* answer queries from the older live instance, whose coverage is always
  between ``window/2`` and ``window`` of the most recent arrivals.

Guarantee: answers are ε-correct *with respect to the covered suffix*,
whose length is within a factor 2 of the requested window — the usual
trade-off accepted by jumping-window systems. Communication doubles
(every arrival feeds two instances), preserving the ``O(k/ε·log W)``
shape per window of ``W`` arrivals.
"""

from __future__ import annotations

from typing import Callable

from repro.common.params import TrackingParams
from repro.common.validation import require_positive
from repro.core.all_quantiles import AllQuantilesProtocol
from repro.core.heavy_hitters import HeavyHitterProtocol


class _JumpingWindow:
    """Two staggered instances; the older one answers queries."""

    def __init__(
        self,
        window: int,
        factory: Callable[[], object],
    ) -> None:
        require_positive(window, "window")
        if window < 2:
            raise ValueError("window must be at least 2 arrivals")
        self._window = window
        self._factory = factory
        self._half = max(1, window // 2)
        self._older = factory()
        self._older_count = 0
        # The staggered successor is only started once the current instance
        # reaches half a window, so at takeover it covers exactly window/2.
        self._newer = None
        self._newer_count = 0

    @property
    def window(self) -> int:
        """The requested window length (arrivals)."""
        return self._window

    @property
    def covered(self) -> int:
        """Arrivals covered by the answering instance — in [W/2, W]."""
        return self._older_count

    def process(self, site_id: int, item: int) -> None:
        """Feed one arrival to both live instances, jumping when due."""
        self._older.process(site_id, item)
        self._older_count += 1
        if self._newer is not None:
            self._newer.process(site_id, item)
            self._newer_count += 1
        if self._older_count >= self._window:
            # The successor (at exactly window/2 coverage) takes over.
            self._older = self._newer
            self._older_count = self._newer_count
            self._newer = None
            self._newer_count = 0
        if self._newer is None and self._older_count >= self._half:
            self._newer = self._factory()
            self._newer_count = 0

    def process_stream(self, stream) -> None:
        for site_id, item in stream:
            self.process(site_id, item)

    @property
    def answering_instance(self):
        """The protocol instance queries are served from."""
        return self._older

    @property
    def total_words(self) -> int:
        """Words spent by the live instances (discarded ones excluded)."""
        words = self._older.stats.words
        if self._newer is not None:
            words += self._newer.stats.words
        return words


class JumpingWindowHeavyHitters(_JumpingWindow):
    """φ-heavy hitters over (approximately) the last ``window`` arrivals."""

    def __init__(self, window: int, params: TrackingParams) -> None:
        super().__init__(window, lambda: HeavyHitterProtocol(params))
        self.params = params

    def heavy_hitters(self, phi: float) -> set[int]:
        """ε-approximate φ-heavy hitters of the covered suffix."""
        return self.answering_instance.heavy_hitters(phi)


class JumpingWindowQuantiles(_JumpingWindow):
    """All quantiles over (approximately) the last ``window`` arrivals."""

    def __init__(self, window: int, params: TrackingParams) -> None:
        super().__init__(window, lambda: AllQuantilesProtocol(params))
        self.params = params

    def quantile(self, phi: float) -> int:
        """ε-approximate φ-quantile of the covered suffix."""
        return self.answering_instance.quantile(phi)

    def rank(self, item: int) -> int:
        """ε-approximate rank of ``item`` within the covered suffix."""
        return self.answering_instance.rank(item)
