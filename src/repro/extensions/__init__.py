"""Extensions beyond the paper's core results.

§5 lists tracking within a *sliding window* as an open problem; this
package ships the standard jumping-window relaxation built on top of the
paper's protocols (see :mod:`repro.extensions.sliding_window`).
"""

from repro.extensions.sliding_window import (
    JumpingWindowHeavyHitters,
    JumpingWindowQuantiles,
)

__all__ = ["JumpingWindowHeavyHitters", "JumpingWindowQuantiles"]
