"""Single-stream summary sketches used as per-site state.

The paper's protocols assume each site keeps exact local frequencies or
local quantile structures; §2.1 and §3.1 observe the protocols still work
when those are replaced by an ``O(1/ε)``-space heavy-hitter sketch
(SpaceSaving) or a Greenwald–Khanna quantile summary. This package
implements those sketches — plus Misra–Gries, Count–Min, and reservoir
sampling used by baselines — behind small uniform interfaces.
"""

from repro.sketches.base import FrequencySketch, QuantileSketch
from repro.sketches.countmin import CountMinSketch
from repro.sketches.exact import ExactFrequency, ExactQuantile
from repro.sketches.gk import GKQuantileSketch
from repro.sketches.misra_gries import MisraGriesSketch
from repro.sketches.reservoir import ReservoirSample
from repro.sketches.spacesaving import SpaceSavingSketch

__all__ = [
    "FrequencySketch",
    "QuantileSketch",
    "CountMinSketch",
    "ExactFrequency",
    "ExactQuantile",
    "GKQuantileSketch",
    "MisraGriesSketch",
    "ReservoirSample",
    "SpaceSavingSketch",
]
