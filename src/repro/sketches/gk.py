"""Greenwald–Khanna quantile summary (SIGMOD 2001).

The per-site quantile structure named by §3.1/§4 of the paper: answers rank
queries over a single stream with additive error ``ε·n`` in
``O(1/ε · log(εn))`` space.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

from repro.common.validation import require_epsilon
from repro.sketches.base import QuantileSketch


@dataclass
class _Tuple:
    """One GK triple ``(v, g, Δ)``.

    ``g`` is the rank gap to the previous kept value and ``Δ`` bounds the
    uncertainty of this value's rank.
    """

    value: int
    g: int
    delta: int


class GKQuantileSketch(QuantileSketch):
    """Greenwald–Khanna summary with rank error at most ``ε·count``.

    The classic invariant ``g_i + Δ_i ≤ 2εn`` is maintained by periodic
    compression (every ``⌈1/(2ε)⌉`` inserts).
    """

    def __init__(self, epsilon: float) -> None:
        require_epsilon(epsilon)
        self._epsilon = epsilon
        self._tuples: list[_Tuple] = []
        self._values: list[int] = []  # parallel sorted list for bisect
        self._count = 0
        self._compress_every = max(1, int(1 / (2 * epsilon)))

    @property
    def count(self) -> int:
        return self._count

    @property
    def tuple_count(self) -> int:
        """Current number of stored triples (the space usage)."""
        return len(self._tuples)

    def error_bound(self) -> float:
        return self._epsilon * self._count

    def insert(self, item: int) -> None:
        self._count += 1
        threshold = self._threshold()
        position = bisect.bisect_left(self._values, item)
        if position == 0 or position == len(self._tuples):
            # New minimum or maximum must be exact (delta = 0).
            new = _Tuple(value=item, g=1, delta=0)
        else:
            new = _Tuple(value=item, g=1, delta=max(0, threshold - 1))
        self._tuples.insert(position, new)
        self._values.insert(position, item)
        if self._count % self._compress_every == 0:
            self._compress()

    def _threshold(self) -> int:
        """Current merge threshold ``⌊2εn⌋``."""
        return max(1, int(2 * self._epsilon * self._count))

    def _compress(self) -> None:
        """Merge adjacent triples whose combined uncertainty stays legal."""
        if len(self._tuples) < 3:
            return
        threshold = self._threshold()
        merged: list[_Tuple] = [self._tuples[0]]
        # Walk right-to-left conceptually; here left-to-right, folding a
        # tuple into its successor when the invariant allows.
        for current in self._tuples[1:]:
            previous = merged[-1]
            can_merge = (
                len(merged) > 1  # never merge away the minimum
                and previous.g + current.g + current.delta <= threshold
            )
            if can_merge:
                current = _Tuple(
                    value=current.value,
                    g=previous.g + current.g,
                    delta=current.delta,
                )
                merged[-1] = current
            else:
                merged.append(current)
        self._tuples = merged
        self._values = [entry.value for entry in merged]

    def rank(self, item: int) -> int:
        """Approximate count of inserted items ``≤ item``.

        Standard GK estimator: with ``v_i ≤ item < v_{i+1}`` the true rank
        lies in ``[rmin_i, rmax_{i+1} − 1]``; return the midpoint, whose
        error is ``(g_{i+1} + Δ_{i+1})/2 ≤ ε·n``.
        """
        if self._count == 0:
            return 0
        position = bisect.bisect_right(self._values, item)
        if position == 0:
            return 0
        rank_min = sum(entry.g for entry in self._tuples[:position])
        if position == len(self._tuples):
            return rank_min  # at or beyond the stored maximum (delta = 0)
        nxt = self._tuples[position]
        rank_max_next = rank_min + nxt.g + nxt.delta
        return (rank_min + rank_max_next - 1) // 2

    def quantile(self, phi: float) -> int:
        """Value whose rank is within ``ε·count`` of ``φ·count``."""
        if self._count == 0:
            raise IndexError("quantile of an empty sketch")
        if not 0 <= phi <= 1:
            raise ValueError(f"phi must be in [0, 1], got {phi!r}")
        target = max(1, int(-(-phi * self._count // 1)))
        rank_min = 0
        best = self._tuples[0].value
        best_gap = float("inf")
        for entry in self._tuples:
            rank_min += entry.g
            midpoint = rank_min + entry.delta / 2
            gap = abs(midpoint - target)
            if gap < best_gap:
                best, best_gap = entry.value, gap
        return best

    def merged_values(self) -> list[tuple[int, int, int]]:
        """Snapshot of the summary as ``(value, g, delta)`` triples."""
        return [(t.value, t.g, t.delta) for t in self._tuples]
