"""Abstract interfaces for frequency and quantile summaries."""

from __future__ import annotations

from abc import ABC, abstractmethod


class FrequencySketch(ABC):
    """Summary answering approximate point-frequency queries.

    Implementations guarantee ``estimate(x)`` is within ``error_bound()`` of
    the true frequency of ``x`` among the ``count`` items inserted so far.
    """

    @abstractmethod
    def insert(self, item: int, weight: int = 1) -> None:
        """Record ``weight`` occurrences of ``item``."""

    @abstractmethod
    def estimate(self, item: int) -> int:
        """Approximate frequency of ``item``."""

    @property
    @abstractmethod
    def count(self) -> int:
        """Total weight inserted so far."""

    @abstractmethod
    def error_bound(self) -> float:
        """Maximum absolute error of :meth:`estimate` right now."""

    @abstractmethod
    def heavy_hitters(self, threshold: int) -> dict[int, int]:
        """All tracked items whose estimate is at least ``threshold``."""


class QuantileSketch(ABC):
    """Summary answering approximate rank and quantile queries."""

    @abstractmethod
    def insert(self, item: int) -> None:
        """Record one occurrence of ``item``."""

    @abstractmethod
    def rank(self, item: int) -> int:
        """Approximate number of inserted items ``≤ item``."""

    @abstractmethod
    def quantile(self, phi: float) -> int:
        """An approximate φ-quantile of the inserted items."""

    @property
    @abstractmethod
    def count(self) -> int:
        """Total number of inserted items."""

    @abstractmethod
    def error_bound(self) -> float:
        """Maximum absolute rank error right now."""
