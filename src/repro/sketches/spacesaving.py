"""SpaceSaving sketch (Metwally, Agrawal, El Abbadi 2006).

The per-site heavy-hitter summary named by §2.1 of the paper: ``O(1/ε)``
counters, additive error at most ``ε·count``, estimates never undercount by
more than each counter's recorded overestimate.
"""

from __future__ import annotations

import heapq

from repro.common.validation import require_epsilon
from repro.sketches.base import FrequencySketch


class SpaceSavingSketch(FrequencySketch):
    """SpaceSaving with ``⌈1/ε⌉`` monitored counters.

    Guarantees, with ``n`` the total inserted weight:

    * ``estimate(x) ≥ freq(x)`` for monitored ``x`` (overestimate),
    * ``estimate(x) − freq(x) ≤ ε·n``,
    * every ``x`` with ``freq(x) > ε·n`` is monitored.

    Internally a lazy min-heap keyed by counter value; amortised ``O(log 1/ε)``
    per insert.
    """

    def __init__(self, epsilon: float) -> None:
        require_epsilon(epsilon)
        self._epsilon = epsilon
        self._capacity = max(1, int(1 / epsilon))
        self._counters: dict[int, int] = {}
        self._overestimates: dict[int, int] = {}
        self._heap: list[tuple[int, int]] = []  # (count, item), may be stale
        self._count = 0

    @property
    def count(self) -> int:
        return self._count

    @property
    def capacity(self) -> int:
        """Maximum number of monitored items."""
        return self._capacity

    def insert(self, item: int, weight: int = 1) -> None:
        if weight < 0:
            raise ValueError(f"weight must be non-negative, got {weight!r}")
        if weight == 0:
            return
        self._count += weight
        counters = self._counters
        if item in counters:
            counters[item] += weight
            heapq.heappush(self._heap, (counters[item], item))
            return
        if len(counters) < self._capacity:
            counters[item] = weight
            self._overestimates[item] = 0
            heapq.heappush(self._heap, (weight, item))
            return
        victim, victim_count = self._pop_min()
        del counters[victim]
        del self._overestimates[victim]
        counters[item] = victim_count + weight
        self._overestimates[item] = victim_count
        heapq.heappush(self._heap, (counters[item], item))

    def _pop_min(self) -> tuple[int, int]:
        """Remove and return the (item, count) with the smallest counter."""
        heap = self._heap
        counters = self._counters
        while heap:
            cnt, item = heapq.heappop(heap)
            if counters.get(item) == cnt:
                return item, cnt
        raise RuntimeError("SpaceSaving heap out of sync")  # pragma: no cover

    def estimate(self, item: int) -> int:
        return self._counters.get(item, 0)

    def guaranteed_count(self, item: int) -> int:
        """A lower bound on ``freq(item)`` (counter minus its overestimate)."""
        if item not in self._counters:
            return 0
        return self._counters[item] - self._overestimates[item]

    def error_bound(self) -> float:
        if len(self._counters) < self._capacity:
            return 0.0
        return self._count / self._capacity

    def heavy_hitters(self, threshold: int) -> dict[int, int]:
        return {
            item: est
            for item, est in self._counters.items()
            if est >= threshold
        }

    def items(self) -> dict[int, int]:
        """Snapshot of all monitored (item, counter) pairs."""
        return dict(self._counters)
