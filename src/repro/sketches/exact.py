"""Exact (non-sketch) implementations of the summary interfaces.

These are the defaults used by the protocols — the paper's analysis assumes
each site maintains exact local frequencies / local order statistics — and
they double as reference implementations in sketch tests.
"""

from __future__ import annotations

from collections import Counter

from repro.sketches.base import FrequencySketch, QuantileSketch
from repro.structures.fenwick import FenwickTree


class ExactFrequency(FrequencySketch):
    """Exact frequency map (unbounded space)."""

    def __init__(self) -> None:
        self._counts: Counter[int] = Counter()
        self._count = 0

    @property
    def count(self) -> int:
        return self._count

    def insert(self, item: int, weight: int = 1) -> None:
        if weight < 0:
            raise ValueError(f"weight must be non-negative, got {weight!r}")
        self._counts[item] += weight
        self._count += weight

    def estimate(self, item: int) -> int:
        return self._counts[item]

    def error_bound(self) -> float:
        return 0.0

    def heavy_hitters(self, threshold: int) -> dict[int, int]:
        return {
            item: cnt for item, cnt in self._counts.items() if cnt >= threshold
        }

    def items(self) -> dict[int, int]:
        """All (item, count) pairs."""
        return dict(self._counts)


class ExactQuantile(QuantileSketch):
    """Exact order statistics backed by a Fenwick tree over the universe."""

    def __init__(self, universe_size: int) -> None:
        self._tree = FenwickTree(universe_size)

    @property
    def count(self) -> int:
        return self._tree.total

    def insert(self, item: int) -> None:
        self._tree.add(item)

    def rank(self, item: int) -> int:
        return self._tree.prefix_sum(item)

    def quantile(self, phi: float) -> int:
        return self._tree.quantile(phi)

    def range_count(self, lo: int, hi: int) -> int:
        """Exact number of items in the inclusive value range ``[lo, hi]``."""
        return self._tree.range_sum(lo, hi)

    def error_bound(self) -> float:
        return 0.0
