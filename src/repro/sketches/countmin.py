"""Count–Min sketch (Cormode & Muthukrishnan).

Randomized frequency summary used by the sampling baseline's verification
path and available as an alternative per-site summary.
"""

from __future__ import annotations

import math

import numpy as np

from repro.common.rng import make_rng
from repro.common.validation import require_epsilon
from repro.sketches.base import FrequencySketch

_MERSENNE_PRIME = (1 << 61) - 1


class CountMinSketch(FrequencySketch):
    """Count–Min with width ``⌈e/ε⌉`` and depth ``⌈ln(1/δ)⌉``.

    ``estimate(x)`` never undercounts and overcounts by more than ``ε·n``
    with probability ``1 − δ`` per query.
    """

    def __init__(
        self,
        epsilon: float,
        delta: float = 0.01,
        rng: np.random.Generator | None = None,
    ) -> None:
        require_epsilon(epsilon)
        if not 0 < delta < 1:
            raise ValueError(f"delta must be in (0, 1), got {delta!r}")
        self._epsilon = epsilon
        self._delta = delta
        self._width = max(2, math.ceil(math.e / epsilon))
        self._depth = max(1, math.ceil(math.log(1 / delta)))
        rng = rng or make_rng(0)
        # Pairwise-independent hashes: h(x) = (a*x + b) mod p mod width.
        self._a = rng.integers(1, _MERSENNE_PRIME, size=self._depth)
        self._b = rng.integers(0, _MERSENNE_PRIME, size=self._depth)
        self._table = np.zeros((self._depth, self._width), dtype=np.int64)
        self._count = 0

    @property
    def count(self) -> int:
        return self._count

    @property
    def shape(self) -> tuple[int, int]:
        """(depth, width) of the counter table."""
        return self._depth, self._width

    def _columns(self, item: int) -> np.ndarray:
        return ((self._a * item + self._b) % _MERSENNE_PRIME) % self._width

    def insert(self, item: int, weight: int = 1) -> None:
        if weight < 0:
            raise ValueError(f"weight must be non-negative, got {weight!r}")
        if weight == 0:
            return
        self._count += weight
        cols = self._columns(item)
        self._table[np.arange(self._depth), cols] += weight

    def estimate(self, item: int) -> int:
        cols = self._columns(item)
        return int(self._table[np.arange(self._depth), cols].min())

    def error_bound(self) -> float:
        return self._epsilon * self._count

    def heavy_hitters(self, threshold: int) -> dict[int, int]:
        raise NotImplementedError(
            "Count-Min cannot enumerate items; pair it with a candidate set"
        )

    def heavy_hitters_from(
        self, candidates: list[int], threshold: int
    ) -> dict[int, int]:
        """Filter an explicit candidate list by estimated frequency."""
        return {
            item: est
            for item in candidates
            if (est := self.estimate(item)) >= threshold
        }
