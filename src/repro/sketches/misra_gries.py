"""Misra–Gries frequent-items summary.

Classic deterministic ``O(1/ε)``-space sketch: estimates every frequency
with additive error at most ``ε·count``, never overestimating.
"""

from __future__ import annotations

from repro.common.validation import require_epsilon
from repro.sketches.base import FrequencySketch


class MisraGriesSketch(FrequencySketch):
    """Misra–Gries summary with ``⌈1/ε⌉`` counters.

    Estimates are *underestimates*: ``freq(x) − ε·n ≤ estimate(x) ≤ freq(x)``.
    """

    def __init__(self, epsilon: float) -> None:
        require_epsilon(epsilon)
        self._epsilon = epsilon
        self._capacity = max(1, int(1 / epsilon))
        self._counters: dict[int, int] = {}
        self._count = 0
        self._decrements = 0

    @property
    def count(self) -> int:
        return self._count

    @property
    def capacity(self) -> int:
        """Maximum number of counters held simultaneously."""
        return self._capacity

    def insert(self, item: int, weight: int = 1) -> None:
        if weight < 0:
            raise ValueError(f"weight must be non-negative, got {weight!r}")
        if weight == 0:
            return
        self._count += weight
        counters = self._counters
        if item in counters:
            counters[item] += weight
            return
        if len(counters) < self._capacity:
            counters[item] = weight
            return
        # Decrement-all step, batched: remove the largest amount that keeps
        # every counter non-negative and absorbs the new item's weight.
        decrement = min(weight, min(counters.values()))
        self._decrements += decrement
        remaining = weight - decrement
        for key in list(counters):
            counters[key] -= decrement
            if counters[key] == 0:
                del counters[key]
        if remaining > 0:
            if len(counters) < self._capacity:
                counters[item] = remaining
            else:
                # Re-run on the remainder; terminates because each pass
                # either stores the item or strictly shrinks counters.
                self._count -= remaining
                self.insert(item, remaining)

    def estimate(self, item: int) -> int:
        return self._counters.get(item, 0)

    def error_bound(self) -> float:
        # Each unit of decrement removes capacity+1 units of weight, so the
        # per-item undercount is at most count/(capacity+1) <= eps*count.
        return self._count / (self._capacity + 1)

    def heavy_hitters(self, threshold: int) -> dict[int, int]:
        return {
            item: est
            for item, est in self._counters.items()
            if est >= threshold
        }

    def items(self) -> dict[int, int]:
        """Snapshot of all tracked (item, counter) pairs."""
        return dict(self._counters)
