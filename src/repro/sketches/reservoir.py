"""Reservoir sampling over a stream.

Substrate for the §5 randomized-sampling observation: maintains a uniform
sample of fixed size from an unbounded stream.
"""

from __future__ import annotations

import numpy as np

from repro.common.rng import make_rng
from repro.common.validation import require_positive


class ReservoirSample:
    """Uniform without-replacement sample of ``capacity`` stream items."""

    def __init__(
        self, capacity: int, rng: np.random.Generator | None = None
    ) -> None:
        require_positive(capacity, "capacity")
        self._capacity = capacity
        self._rng = rng or make_rng(0)
        self._sample: list[int] = []
        self._count = 0

    @property
    def count(self) -> int:
        """Total number of items observed."""
        return self._count

    @property
    def capacity(self) -> int:
        return self._capacity

    def insert(self, item: int) -> None:
        """Observe one stream item."""
        self._count += 1
        if len(self._sample) < self._capacity:
            self._sample.append(item)
            return
        slot = int(self._rng.integers(0, self._count))
        if slot < self._capacity:
            self._sample[slot] = item

    def sample(self) -> list[int]:
        """Snapshot of the current sample (length ``min(count, capacity)``)."""
        return list(self._sample)

    def estimate_frequency(self, item: int) -> float:
        """Estimated global frequency of ``item``, scaled from the sample."""
        if not self._sample:
            return 0.0
        in_sample = sum(1 for value in self._sample if value == item)
        return in_sample / len(self._sample) * self._count

    def estimate_quantile(self, phi: float) -> int:
        """Estimated φ-quantile from the sample."""
        if not self._sample:
            raise IndexError("quantile of an empty reservoir")
        ordered = sorted(self._sample)
        index = min(len(ordered) - 1, max(0, int(phi * len(ordered))))
        return ordered[index]
