"""Lemma 2.3: the threshold adversary forcing ``Ω(k)`` messages per change.

Deterministic protocols expose, at any instant, a per-site *triggering
threshold*: the number of copies of an item a site can absorb before it
must communicate. Because the thresholds must sum below the batch size
(else the whole batch could be absorbed silently and the change missed),
some site always has a threshold at most ``2·batch/k`` — the adversary
feeds exactly that site, repeating ``Ω(k)`` times per batch.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.heavy_hitters.protocol import HeavyHitterProtocol


@dataclass(frozen=True)
class AdversaryOutcome:
    """Result of delivering one batch adversarially."""

    messages_triggered: int
    words_triggered: int
    sites_touched: int
    deliveries: int


class ThresholdAdversary:
    """Routes copies of a single item to minimise the protocol's slack.

    At every step the adversary inspects all current triggering thresholds
    (sanctioned for deterministic algorithms — Lemma 2.3) and sends the
    next copies to the site that is closest to being forced to speak.
    """

    def __init__(self, protocol: HeavyHitterProtocol) -> None:
        self._protocol = protocol

    def deliver_batch(self, item: int, copies: int) -> AdversaryOutcome:
        """Deliver ``copies`` of ``item``, always targeting the weakest site.

        Returns the communication the protocol was forced into.
        """
        protocol = self._protocol
        k = protocol.params.num_sites
        before = protocol.stats.snapshot()
        touched: set[int] = set()
        remaining = copies
        while remaining > 0:
            thresholds = [
                protocol.site_trigger_threshold(site_id, item)
                for site_id in range(k)
            ]
            target = min(range(k), key=thresholds.__getitem__)
            burst = min(remaining, thresholds[target])
            for _ in range(burst):
                protocol.process(target, item)
            touched.add(target)
            remaining -= burst
        delta = protocol.stats.snapshot() - before
        return AdversaryOutcome(
            messages_triggered=delta.messages,
            words_triggered=delta.words,
            sites_touched=len(touched),
            deliveries=copies,
        )

    def deliver_round_robin(self, item: int, copies: int) -> AdversaryOutcome:
        """Non-adversarial control: spread the batch evenly over sites."""
        protocol = self._protocol
        k = protocol.params.num_sites
        before = protocol.stats.snapshot()
        for index in range(copies):
            protocol.process(index % k, item)
        delta = protocol.stats.snapshot() - before
        return AdversaryOutcome(
            messages_triggered=delta.messages,
            words_triggered=delta.words,
            sites_touched=min(k, copies),
            deliveries=copies,
        )
