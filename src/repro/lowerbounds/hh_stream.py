"""Lemma 2.2: a stream whose heavy-hitter set changes ``Ω(log n / ε)`` times.

Construction (following the paper's proof): two groups of
``l = 1/(2φ − ε′)`` items alternate roles every round. At the start of
round ``i`` the current "heavy" group sits at frequency ``φ·m_i`` each and
the other group at ``(φ − ε′)·m_i``; the round appends ``β·m_i`` copies of
each light item (``β = ε′(2φ−ε′)/(φ−ε′)``), which pushes every light item
up through the ``[(φ−ε)m, φm]`` transition window — ``l`` changes per
round, with ``m`` growing by only a ``φ/(φ−ε′)`` factor per round.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.common.errors import ConfigurationError


def lemma22_epsilon(l: int, phi: float) -> float:
    """The ``ε`` for which the construction with group size ``l`` is exact.

    The proof needs ``l = 1/(2φ − ε′)`` with ``ε′ = 2ε`` an exact integer;
    given integer ``l`` and ``φ``, solve for ``ε = (2φ − 1/l)/2``.
    """
    if l < 1:
        raise ConfigurationError(f"group size l must be >= 1, got {l!r}")
    epsilon = (2 * phi - 1 / l) / 2
    if not 0 < epsilon < phi / 3:
        raise ConfigurationError(
            f"l={l}, phi={phi} gives epsilon={epsilon:.4f}, outside the "
            f"lemma's range 0 < eps < phi/3"
        )
    return epsilon


@dataclass(frozen=True)
class TransitionWindow:
    """The arrival-index window in which one item's change must be noticed.

    ``item`` transitions from non-heavy to heavy somewhere inside
    ``[start_index, end_index)`` of the generated stream.
    """

    item: int
    start_index: int
    end_index: int
    round_index: int


def lemma22_stream(
    l: int, phi: float, n_target: int
) -> tuple[list[int], list[TransitionWindow], float]:
    """Generate the Lemma 2.2 stream up to roughly ``n_target`` items.

    Returns ``(items, transition_windows, epsilon)``. Items are the
    integers ``1..2l`` (group S0 = 1..l, group S1 = l+1..2l).
    """
    epsilon = lemma22_epsilon(l, phi)
    eps_prime = 2 * epsilon
    beta = eps_prime * (2 * phi - eps_prime) / (phi - eps_prime)

    # Initial prefix: S0 at phi*m0 each, S1 at (phi - eps') * m0 each.
    # Choose m0 so all the initial counts are integers >= 1.
    scale = max(1, math.ceil(1 / (phi - eps_prime)), math.ceil(1 / beta))
    m0 = scale * l * 4
    heavy_count = round(phi * m0)
    light_count = round((phi - eps_prime) * m0)
    items: list[int] = []
    for item in range(1, l + 1):  # S0: heavy at start of round 0
        items.extend([item] * heavy_count)
    for item in range(l + 1, 2 * l + 1):  # S1: light
        items.extend([item] * light_count)
    m = len(items)

    windows: list[TransitionWindow] = []
    round_index = 0
    while len(items) < n_target:
        light_group = (
            range(l + 1, 2 * l + 1) if round_index % 2 == 0 else range(1, l + 1)
        )
        batch = max(1, round(beta * m))
        for item in light_group:
            start = len(items)
            items.extend([item] * batch)
            windows.append(
                TransitionWindow(
                    item=item,
                    start_index=start,
                    end_index=len(items),
                    round_index=round_index,
                )
            )
        m = len(items)
        round_index += 1
    return items, windows, epsilon


def count_heavy_hitter_changes(
    items: list[int], phi: float, epsilon: float
) -> int:
    """Count light→heavy transitions of any item along the stream.

    A change is a frequency crossing from below ``(φ−ε)|A|`` to ``φ|A|`` or
    the reverse; following the proof we count only the upward direction
    (which already gives the ``Ω(log n / ε)`` bound).
    """
    from collections import Counter

    counts: Counter[int] = Counter()
    total = 0
    # State per item: True once it reaches phi*|A|; reset once below
    # (phi - eps)*|A|.
    is_heavy: dict[int, bool] = {}
    changes = 0
    for item in items:
        counts[item] += 1
        total += 1
        count = counts[item]
        heavy_now = is_heavy.get(item, False)
        if not heavy_now and count >= phi * total:
            is_heavy[item] = True
            changes += 1
        elif heavy_now and count < (phi - epsilon) * total:
            is_heavy[item] = False
    return changes
