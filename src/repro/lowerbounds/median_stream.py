"""§3.2: a two-value stream whose median changes ``Ω(log n / ε)`` times.

Invariant: at the start of round ``i`` item ``b`` has frequency
``(0.5 − 2ε)·m_i`` and item ``1−b`` has ``(0.5 + 2ε)·m_i``
(``b = i mod 2``); the round inserts ``4ε/(0.5 − 2ε) · m_i`` copies of
``b``, flipping which value holds the median.
"""

from __future__ import annotations

import math

from repro.common.errors import ConfigurationError

LOW_VALUE = 1
HIGH_VALUE = 2


def median_lower_bound_stream(
    epsilon: float, n_target: int
) -> tuple[list[int], int]:
    """Generate the §3.2 stream up to roughly ``n_target`` items.

    Returns ``(items, rounds)``. Items take only the values
    ``LOW_VALUE`` / ``HIGH_VALUE``.
    """
    if not 0 < epsilon < 0.125:
        raise ConfigurationError(
            f"construction needs 0 < eps < 1/8, got {epsilon!r}"
        )
    low_fraction = 0.5 - 2 * epsilon
    # Initial prefix: LOW at (0.5 - 2eps) m0, HIGH at (0.5 + 2eps) m0.
    m0 = max(64, math.ceil(4 / epsilon))
    low_count = round(low_fraction * m0)
    high_count = m0 - low_count
    items = [LOW_VALUE] * low_count + [HIGH_VALUE] * high_count
    m = len(items)
    counts = {LOW_VALUE: low_count, HIGH_VALUE: high_count}
    rounds = 0
    light = LOW_VALUE
    while len(items) < n_target:
        batch = max(1, round(4 * epsilon / low_fraction * m))
        items.extend([light] * batch)
        counts[light] += batch
        m = len(items)
        rounds += 1
        light = HIGH_VALUE if light == LOW_VALUE else LOW_VALUE
    return items, rounds


def count_median_changes(items: list[int]) -> int:
    """Number of times the exact median flips between the two values."""
    low = 0
    total = 0
    current: int | None = None
    changes = 0
    for item in items:
        if item == LOW_VALUE:
            low += 1
        total += 1
        median = LOW_VALUE if low * 2 > total else HIGH_VALUE
        if current is not None and median != current:
            changes += 1
        current = median
    return changes
