"""The abstract threshold game at the heart of Lemma 2.3.

A deterministic tracking protocol, watching for a frequency change that
completes after ``budget`` copies of an item arrive, is characterised by
per-site triggering thresholds ``n_j``: site ``j`` stays silent until it has
absorbed ``n_j`` copies. Correctness forces ``Σ(n_j − 1) < budget`` — were
the sum larger, the adversary could place ``n_j − 1`` copies at every site
and finish the transition in total silence, so the coordinator would miss
the change.

Given that constraint, some site always has ``n_j ≤ 2·budget/k``; the
adversary feeds exactly that site, forcing a message per at most
``2·budget/k`` deliveries — i.e. ``Ω(k)`` messages across the batch,
*whatever* rebalancing strategy the detector uses between messages.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError


@dataclass(frozen=True)
class GameOutcome:
    """Result of one play of the threshold game."""

    messages: int
    deliveries: int
    change_detected: bool


class CorrectDetector:
    """A detector that keeps ``Σ(n_j − 1) < budget`` at all times.

    It plays the strongest legal strategy: spread the *remaining* silence
    budget evenly across all sites after every message, maximising how much
    it can absorb quietly. Lemma 2.3 says even this pays ``Ω(k)``.
    """

    def __init__(self, num_sites: int, budget: int) -> None:
        if num_sites < 1:
            raise ConfigurationError(f"need >= 1 site, got {num_sites!r}")
        if budget < 1:
            raise ConfigurationError(f"budget must be >= 1, got {budget!r}")
        self.num_sites = num_sites
        self.budget = budget
        self.messages = 0
        self._received = [0] * num_sites
        self._thresholds = [0] * num_sites
        self._rebalance()

    def _rebalance(self) -> None:
        """Reset thresholds to evenly share the remaining silence budget."""
        consumed = sum(self._received)
        remaining = max(0, self.budget - consumed - 1)
        share = remaining // self.num_sites + 1  # sum(n_j - 1) <= remaining
        for site in range(self.num_sites):
            self._thresholds[site] = share
            self._received[site] = 0

    def threshold(self, site: int) -> int:
        """Copies site ``site`` still absorbs before it must speak."""
        return self._thresholds[site] - self._received[site]

    def deliver(self, site: int, copies: int) -> int:
        """Feed ``copies`` to ``site``; returns messages triggered."""
        triggered = 0
        for _ in range(copies):
            self._received[site] += 1
            if self._received[site] >= self._thresholds[site]:
                triggered += 1
                self.messages += 1
                self._rebalance()
        return triggered


class CheatingDetector:
    """A detector that violates the sum constraint (``Σ(n_j − 1) ≥ budget``).

    It communicates less — in fact not at all against the adversary — but
    necessarily *misses the change*, which is exactly the dichotomy the
    lemma's proof sets up.
    """

    def __init__(self, num_sites: int, budget: int) -> None:
        self.num_sites = num_sites
        self.budget = budget
        self.messages = 0
        # Thresholds so large the whole batch fits silently.
        self._thresholds = [budget + 1] * num_sites
        self._received = [0] * num_sites

    def threshold(self, site: int) -> int:
        return self._thresholds[site] - self._received[site]

    def deliver(self, site: int, copies: int) -> int:
        triggered = 0
        for _ in range(copies):
            self._received[site] += 1
            if self._received[site] >= self._thresholds[site]:
                triggered += 1
                self.messages += 1
        return triggered


def play_adversarial(detector, copies: int) -> GameOutcome:
    """Adversary: always feed the site closest to its trigger."""
    remaining = copies
    while remaining > 0:
        target = min(
            range(detector.num_sites), key=lambda site: detector.threshold(site)
        )
        burst = max(1, min(remaining, detector.threshold(target)))
        detector.deliver(target, burst)
        remaining -= burst
    return GameOutcome(
        messages=detector.messages,
        deliveries=copies,
        change_detected=detector.messages > 0,
    )


def play_spread(detector, copies: int) -> GameOutcome:
    """Benign control: spread the batch evenly (round-robin)."""
    for index in range(copies):
        detector.deliver(index % detector.num_sites, 1)
    return GameOutcome(
        messages=detector.messages,
        deliveries=copies,
        change_detected=detector.messages > 0,
    )
