"""Lower-bound machinery: the paper's adversarial constructions.

* :mod:`repro.lowerbounds.hh_stream` — Lemma 2.2's stream forcing
  ``Ω(log n / ε)`` heavy-hitter set changes.
* :mod:`repro.lowerbounds.median_stream` — §3.2's two-value stream forcing
  ``Ω(log n / ε)`` median changes.
* :mod:`repro.lowerbounds.adversary` — Lemma 2.3's threshold adversary that
  routes items to force ``Ω(k)`` messages per change.
"""

from repro.lowerbounds.adversary import ThresholdAdversary
from repro.lowerbounds.threshold_game import (
    CheatingDetector,
    CorrectDetector,
    GameOutcome,
    play_adversarial,
    play_spread,
)
from repro.lowerbounds.hh_stream import (
    count_heavy_hitter_changes,
    lemma22_epsilon,
    lemma22_stream,
)
from repro.lowerbounds.median_stream import (
    count_median_changes,
    median_lower_bound_stream,
)

__all__ = [
    "ThresholdAdversary",
    "CheatingDetector",
    "CorrectDetector",
    "GameOutcome",
    "play_adversarial",
    "play_spread",
    "count_heavy_hitter_changes",
    "lemma22_epsilon",
    "lemma22_stream",
    "count_median_changes",
    "median_lower_bound_stream",
]
