"""Stream generators and site partitioners for experiments and tests."""

from repro.workloads.generators import (
    mixture_stream,
    permutation_stream,
    sequential_stream,
    shifting_stream,
    uniform_stream,
    zipf_stream,
)
from repro.workloads.partitioners import (
    block_partitioner,
    hash_partitioner,
    random_partitioner,
    round_robin_partitioner,
    skewed_partitioner,
)
from repro.workloads.stream import make_stream

__all__ = [
    "mixture_stream",
    "permutation_stream",
    "sequential_stream",
    "shifting_stream",
    "uniform_stream",
    "zipf_stream",
    "block_partitioner",
    "hash_partitioner",
    "random_partitioner",
    "round_robin_partitioner",
    "skewed_partitioner",
    "make_stream",
]
