"""Item-value generators.

Each generator returns a numpy array of ``n`` items in ``{1..universe}``;
all randomness comes from an injected generator so experiments replay
deterministically.
"""

from __future__ import annotations

import numpy as np

from repro.common.rng import make_rng
from repro.common.validation import require_positive


def _clip(values: np.ndarray, universe: int) -> np.ndarray:
    return np.clip(values, 1, universe).astype(np.int64)


def uniform_stream(
    n: int, universe: int, rng: np.random.Generator | None = None
) -> np.ndarray:
    """Items drawn uniformly from the universe."""
    require_positive(n, "n")
    rng = rng or make_rng(0)
    return rng.integers(1, universe + 1, size=n, dtype=np.int64)


def zipf_stream(
    n: int,
    universe: int,
    skew: float = 1.1,
    num_distinct: int | None = None,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Zipf-distributed items: rank ``r`` has probability ``∝ 1/r^skew``.

    The most frequent ranks map to evenly spread universe values so heavy
    items are not all clustered at the low end (which would make quantile
    tracking artificially easy).
    """
    require_positive(n, "n")
    if skew <= 0:
        raise ValueError(f"skew must be positive, got {skew!r}")
    rng = rng or make_rng(0)
    distinct = min(num_distinct or universe, universe)
    weights = 1.0 / np.power(np.arange(1, distinct + 1, dtype=np.float64), skew)
    weights /= weights.sum()
    ranks = rng.choice(distinct, size=n, p=weights)
    # Spread ranks across the universe deterministically (golden-ratio hop).
    step = max(1, int(universe * 0.6180339887) | 1)
    values = 1 + (np.asarray(ranks, dtype=np.int64) * step) % universe
    return _clip(values, universe)


def sequential_stream(
    n: int, universe: int, rng: np.random.Generator | None = None
) -> np.ndarray:
    """Items ``1, 2, 3, ...`` wrapping around the universe (worst-ish case
    for interval maintenance: mass keeps moving right)."""
    require_positive(n, "n")
    return (np.arange(n, dtype=np.int64) % universe) + 1


def permutation_stream(
    n: int, universe: int, rng: np.random.Generator | None = None
) -> np.ndarray:
    """Distinct items in random order (the paper's §3/§4 assumption).

    Requires ``n ≤ universe``.
    """
    require_positive(n, "n")
    if n > universe:
        raise ValueError(f"cannot draw {n} distinct items from universe {universe}")
    rng = rng or make_rng(0)
    return np.asarray(rng.choice(universe, size=n, replace=False) + 1, dtype=np.int64)


def shifting_stream(
    n: int,
    universe: int,
    num_phases: int = 4,
    spread_fraction: float = 0.05,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Distribution drift: a Gaussian blob whose centre jumps per phase.

    Stresses recentering and partial rebuilds — the tracked quantile moves
    a long way at each phase boundary.
    """
    require_positive(n, "n")
    require_positive(num_phases, "num_phases")
    rng = rng or make_rng(0)
    centres = rng.integers(1, universe + 1, size=num_phases)
    spread = max(1.0, universe * spread_fraction)
    phase = (np.arange(n) * num_phases) // n
    values = rng.normal(loc=centres[phase], scale=spread)
    return _clip(np.rint(values), universe)


def mixture_stream(
    n: int,
    universe: int,
    heavy_items: dict[int, float],
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Planted heavy hitters: ``heavy_items`` maps item → frequency fraction;
    the remaining mass is uniform background noise.

    Used by heavy-hitter tests that need ground truth by construction.
    """
    require_positive(n, "n")
    total_heavy = sum(heavy_items.values())
    if total_heavy > 1:
        raise ValueError(f"heavy fractions sum to {total_heavy} > 1")
    rng = rng or make_rng(0)
    items = list(heavy_items)
    probabilities = list(heavy_items.values())
    choices = rng.random(size=n)
    out = np.empty(n, dtype=np.int64)
    cumulative = np.cumsum(probabilities)
    background = uniform_stream(n, universe, rng)
    out[:] = background
    for index, item in enumerate(items):
        lo = cumulative[index - 1] if index else 0.0
        mask = (choices >= lo) & (choices < cumulative[index])
        out[mask] = item
    return out
