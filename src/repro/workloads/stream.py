"""Assembling (site, item) arrival sequences from generators + partitioners."""

from __future__ import annotations

from typing import Callable, Iterator

import numpy as np

from repro.common.rng import make_rng


def make_stream(
    generator: Callable[..., np.ndarray],
    partitioner: Callable[..., np.ndarray],
    n: int,
    universe: int,
    num_sites: int,
    seed: int = 0,
    **generator_kwargs,
) -> list[tuple[int, int]]:
    """Produce a concrete ``[(site_id, item), ...]`` arrival sequence.

    The generator and partitioner receive independent RNG streams derived
    from ``seed``; the same arguments always yield the same stream.
    """
    gen_rng = make_rng(seed)
    part_rng = make_rng(seed + 1)
    items = generator(n, universe, rng=gen_rng, **generator_kwargs)
    sites = partitioner(items, num_sites, rng=part_rng)
    return list(zip(sites.tolist(), items.tolist()))


def stream_chunks(
    stream: list[tuple[int, int]], checkpoint_every: int
) -> Iterator[tuple[list[tuple[int, int]], int]]:
    """Split a stream into chunks ending at audit checkpoints.

    Yields ``(chunk, items_so_far)`` pairs; used by accuracy audits that
    compare protocol answers with ground truth at fixed intervals.
    """
    if checkpoint_every < 1:
        raise ValueError("checkpoint_every must be >= 1")
    for start in range(0, len(stream), checkpoint_every):
        chunk = stream[start : start + checkpoint_every]
        yield chunk, start + len(chunk)
