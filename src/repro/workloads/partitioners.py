"""Site partitioners: decide which site observes each arrival.

A partitioner maps an item array to a same-length array of site ids in
``{0..k−1}``. The paper's bounds hold for *any* adversarial assignment, so
experiments exercise several.
"""

from __future__ import annotations

import numpy as np

from repro.common.rng import make_rng
from repro.common.validation import require_site_count


def round_robin_partitioner(
    items: np.ndarray, num_sites: int, rng: np.random.Generator | None = None
) -> np.ndarray:
    """Site ``i mod k`` observes the ``i``-th arrival."""
    require_site_count(num_sites)
    return np.arange(len(items), dtype=np.int64) % num_sites


def random_partitioner(
    items: np.ndarray, num_sites: int, rng: np.random.Generator | None = None
) -> np.ndarray:
    """Each arrival goes to a uniformly random site."""
    require_site_count(num_sites)
    rng = rng or make_rng(0)
    return rng.integers(0, num_sites, size=len(items), dtype=np.int64)


def skewed_partitioner(
    items: np.ndarray,
    num_sites: int,
    rng: np.random.Generator | None = None,
    hot_fraction: float = 0.8,
) -> np.ndarray:
    """One hot site observes ``hot_fraction`` of arrivals; the rest spread."""
    require_site_count(num_sites)
    rng = rng or make_rng(0)
    assignment = rng.integers(0, num_sites, size=len(items), dtype=np.int64)
    hot = rng.random(size=len(items)) < hot_fraction
    assignment[hot] = 0
    return assignment


def hash_partitioner(
    items: np.ndarray, num_sites: int, rng: np.random.Generator | None = None
) -> np.ndarray:
    """Site chosen by item value (all copies of an item hit one site —
    the worst case for per-item triggers)."""
    require_site_count(num_sites)
    mixed = (np.asarray(items, dtype=np.int64) * 2654435761) & 0x7FFFFFFF
    return mixed % num_sites


def block_partitioner(
    items: np.ndarray, num_sites: int, rng: np.random.Generator | None = None
) -> np.ndarray:
    """Contiguous time blocks: the stream migrates from site to site."""
    require_site_count(num_sites)
    n = len(items)
    block = max(1, n // num_sites)
    return np.minimum(np.arange(n, dtype=np.int64) // block, num_sites - 1)
