"""Base classes for continuous-tracking protocols.

A protocol bundles one :class:`Coordinator`, ``k`` :class:`Site` endpoints
and the :class:`~repro.network.runtime.Network` between them, and exposes a
single facade to the harness: feed ``(site, item)`` arrivals in, query the
coordinator's current answer at any time, read the communication ledger.

Warm-up (§2.1 of the paper): until ``m = ⌈k/ε⌉`` items have arrived, every
arrival is simply forwarded to the coordinator (2 words each), which
therefore knows the prefix exactly. When warm-up completes the concrete
protocol's :meth:`ContinuousTrackingProtocol._initialize` runs with each
site's exact local multiset.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import Counter
from typing import Iterable

from repro.common.errors import ProtocolError
from repro.common.params import TrackingParams
from repro.common.validation import require_universe
from repro.network.accounting import CommStats
from repro.network.message import Message
from repro.network.runtime import Network


class Site(ABC):
    """One remote site: observes local arrivals, talks to the coordinator."""

    def __init__(self, site_id: int, network: Network) -> None:
        self.site_id = site_id
        self.network = network

    def send(self, message: Message) -> None:
        """Send to the coordinator."""
        self.network.send_to_coordinator(self.site_id, message)

    @abstractmethod
    def observe(self, item: int) -> None:
        """Handle one local arrival (may trigger communication)."""

    def on_message(self, message: Message) -> None:
        """Handle a coordinator push (default: reject unknown kinds)."""
        raise ProtocolError(
            f"site {self.site_id} got unexpected message {message.kind!r}"
        )

    def on_request(self, message: Message) -> Message:
        """Answer a coordinator round-trip request."""
        raise ProtocolError(
            f"site {self.site_id} got unexpected request {message.kind!r}"
        )


class Coordinator(ABC):
    """The distinguished coordinator endpoint."""

    def __init__(self, network: Network) -> None:
        self.network = network

    @abstractmethod
    def on_message(self, site_id: int, message: Message) -> None:
        """Handle a site-initiated message (may trigger cascades)."""


class ContinuousTrackingProtocol(ABC):
    """Facade over coordinator + sites + network, with warm-up handling.

    Subclasses implement :meth:`_build` (construct endpoints),
    :meth:`_initialize` (bootstrap from the warm-up prefix) and their own
    query methods; the facade routes arrivals and owns the ledger.
    """

    def __init__(self, params: TrackingParams) -> None:
        self.params = params
        self.stats = CommStats()
        self.network = Network(params.num_sites, self.stats)
        self._items_processed = 0
        self._warmup_per_site: list[list[int]] = [
            [] for _ in range(params.num_sites)
        ]
        self._warmup_counts: Counter[int] = Counter()
        self._initialized = False
        self._build()

    # -- construction hooks ---------------------------------------------------

    @abstractmethod
    def _build(self) -> None:
        """Create coordinator and sites and bind them to the network."""

    @abstractmethod
    def _initialize(self, per_site_items: list[list[int]]) -> None:
        """Bootstrap protocol state from the exact warm-up prefix.

        ``per_site_items[j]`` is the list of items site ``j`` received during
        warm-up, in arrival order. Communication needed for the bootstrap
        must be charged through the network as usual.
        """

    # -- stream ingestion -------------------------------------------------

    @property
    def items_processed(self) -> int:
        """Number of arrivals processed so far (``|A|``)."""
        return self._items_processed

    @property
    def in_warmup(self) -> bool:
        """True while the naive forward-everything prefix is running."""
        return not self._initialized

    def process(self, site_id: int, item: int) -> None:
        """Feed one arrival observed at ``site_id``."""
        require_universe(item, self.params.universe_size)
        if not 0 <= site_id < self.params.num_sites:
            raise ProtocolError(f"unknown site {site_id!r}")
        self._items_processed += 1
        if self._initialized:
            self._observe(site_id, item)
            return
        # Warm-up: relay the raw item (1 header + 1 payload word).
        self.stats.charge_uplink("warmup", 2)
        self._warmup_per_site[site_id].append(item)
        self._warmup_counts[item] += 1
        if self._items_processed >= self.params.warmup_items:
            self._initialized = True
            self._initialize(self._warmup_per_site)
            self._warmup_per_site = []

    def _observe(self, site_id: int, item: int) -> None:
        """Deliver a post-warm-up arrival to the owning site."""
        self._site(site_id).observe(item)

    @abstractmethod
    def _site(self, site_id: int) -> Site:
        """The concrete site endpoint for ``site_id``."""

    def process_stream(self, stream: Iterable[tuple[int, int]]) -> None:
        """Feed a whole ``(site_id, item)`` sequence."""
        for site_id, item in stream:
            self.process(site_id, item)
