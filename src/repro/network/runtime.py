"""The simulated star network connecting sites to the coordinator.

Delivery is synchronous nested dispatch: sending a message invokes the
recipient's handler before the call returns, which models the paper's
"communication is instant" assumption, including cascaded exchanges
triggered by a single arrival. Every hop is charged to the ledger.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.common.errors import CommunicationError
from repro.network.accounting import CommStats
from repro.network.message import Message

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.network.protocol import Coordinator, Site


class Network:
    """Star topology: ``k`` two-way site↔coordinator channels."""

    def __init__(self, num_sites: int, stats: CommStats | None = None) -> None:
        if num_sites < 1:
            raise CommunicationError(
                f"network needs at least one site, got {num_sites!r}"
            )
        self._num_sites = num_sites
        self.stats = stats or CommStats()
        self._coordinator: "Coordinator | None" = None
        self._sites: "list[Site] | None" = None

    @property
    def num_sites(self) -> int:
        return self._num_sites

    def bind(self, coordinator: "Coordinator", sites: "list[Site]") -> None:
        """Attach the endpoints; must happen before any traffic."""
        if len(sites) != self._num_sites:
            raise CommunicationError(
                f"expected {self._num_sites} sites, got {len(sites)}"
            )
        self._coordinator = coordinator
        self._sites = sites

    def _require_bound(self) -> None:
        if self._coordinator is None or self._sites is None:
            raise CommunicationError("network endpoints not bound yet")

    def _check_site(self, site_id: int) -> None:
        if not 0 <= site_id < self._num_sites:
            raise CommunicationError(
                f"unknown site {site_id!r} (have {self._num_sites})"
            )

    # -- site -> coordinator ------------------------------------------------

    def send_to_coordinator(self, site_id: int, message: Message) -> None:
        """Deliver a site's message to the coordinator (charged uplink)."""
        self._require_bound()
        self._check_site(site_id)
        self.stats.charge_uplink(message.kind, message.words)
        self._coordinator.on_message(site_id, message)

    # -- coordinator -> site(s) ---------------------------------------------

    def send_to_site(self, site_id: int, message: Message) -> None:
        """Deliver a coordinator message to one site (charged downlink)."""
        self._require_bound()
        self._check_site(site_id)
        self.stats.charge_downlink(message.kind, message.words)
        self._sites[site_id].on_message(message)

    def broadcast(self, message: Message) -> None:
        """Deliver to every site; charged as ``k`` separate messages."""
        self._require_bound()
        for site_id in range(self._num_sites):
            self.send_to_site(site_id, message)

    def request(self, site_id: int, message: Message) -> Message:
        """Coordinator-initiated round trip; both directions are charged."""
        self._require_bound()
        self._check_site(site_id)
        self.stats.charge_downlink(message.kind, message.words)
        reply = self._sites[site_id].on_request(message)
        self.stats.charge_uplink(reply.kind, reply.words)
        return reply

    def request_all(self, message: Message) -> list[Message]:
        """Round trip with every site; returns replies in site order."""
        self._require_bound()
        return [
            self.request(site_id, message)
            for site_id in range(self._num_sites)
        ]
