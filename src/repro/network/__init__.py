"""Simulation of the distributed streaming (coordinator) model.

``k`` sites each hold a two-way channel to one coordinator; there is no
site-to-site communication (matching the paper's model). Communication is
instant: a site's message may trigger arbitrarily nested coordinator↔site
exchanges before the next item arrives. Every message is charged to a
:class:`~repro.network.accounting.CommStats` ledger in *words*, the paper's
cost measure (one word = ``Θ(log u)`` bits).
"""

from repro.network.accounting import CommSnapshot, CommStats
from repro.network.message import Message, payload_words
from repro.network.protocol import (
    ContinuousTrackingProtocol,
    Coordinator,
    Site,
)
from repro.network.runtime import Network

__all__ = [
    "CommSnapshot",
    "CommStats",
    "Message",
    "payload_words",
    "ContinuousTrackingProtocol",
    "Coordinator",
    "Site",
    "Network",
]
