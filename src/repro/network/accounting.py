"""Communication-cost ledger.

Counts messages and words by direction and by message kind. The harness
snapshots the ledger as the stream advances to produce cost-vs-items series
(the x-axes of every scaling experiment).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass


@dataclass(frozen=True)
class CommSnapshot:
    """Immutable view of the ledger at one instant."""

    messages: int
    words: int
    uplink_messages: int
    downlink_messages: int
    uplink_words: int
    downlink_words: int

    def __sub__(self, other: "CommSnapshot") -> "CommSnapshot":
        return CommSnapshot(
            messages=self.messages - other.messages,
            words=self.words - other.words,
            uplink_messages=self.uplink_messages - other.uplink_messages,
            downlink_messages=self.downlink_messages - other.downlink_messages,
            uplink_words=self.uplink_words - other.uplink_words,
            downlink_words=self.downlink_words - other.downlink_words,
        )


class CommStats:
    """Mutable communication ledger charged by the :class:`Network`."""

    def __init__(self) -> None:
        self.uplink_messages = 0
        self.downlink_messages = 0
        self.uplink_words = 0
        self.downlink_words = 0
        self.by_kind: Counter[str] = Counter()
        self.words_by_kind: Counter[str] = Counter()

    @property
    def messages(self) -> int:
        """Total messages in both directions."""
        return self.uplink_messages + self.downlink_messages

    @property
    def words(self) -> int:
        """Total words in both directions."""
        return self.uplink_words + self.downlink_words

    def charge_uplink(self, kind: str, words: int) -> None:
        """Record one site→coordinator message."""
        self.uplink_messages += 1
        self.uplink_words += words
        self.by_kind[kind] += 1
        self.words_by_kind[kind] += words

    def charge_downlink(self, kind: str, words: int) -> None:
        """Record one coordinator→site message."""
        self.downlink_messages += 1
        self.downlink_words += words
        self.by_kind[kind] += 1
        self.words_by_kind[kind] += words

    def snapshot(self) -> CommSnapshot:
        """Freeze the current totals."""
        return CommSnapshot(
            messages=self.messages,
            words=self.words,
            uplink_messages=self.uplink_messages,
            downlink_messages=self.downlink_messages,
            uplink_words=self.uplink_words,
            downlink_words=self.downlink_words,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"CommStats(messages={self.messages}, words={self.words}, "
            f"up={self.uplink_messages}, down={self.downlink_messages})"
        )
