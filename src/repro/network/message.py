"""Messages exchanged between sites and the coordinator.

A message's cost in *words* is one header word (its kind) plus one word per
scalar in its payload, mirroring the paper's accounting where each word is
``Θ(log u) = Θ(log n)`` bits and a message such as ``(x, ε·Sj.m/3k)`` costs
``O(1)`` words.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


def payload_words(payload: Any) -> int:
    """Number of words needed to transmit ``payload``.

    Scalars cost one word; sequences cost the sum of their elements; ``None``
    is free. Mappings cost one word per key plus the cost of each value.
    """
    if payload is None:
        return 0
    if isinstance(payload, (int, float, str)):
        return 1
    if isinstance(payload, dict):
        return sum(1 + payload_words(value) for value in payload.values())
    if isinstance(payload, (list, tuple)):
        return sum(payload_words(element) for element in payload)
    raise TypeError(f"cannot size payload of type {type(payload).__name__}")


@dataclass(frozen=True)
class Message:
    """One transmission: a ``kind`` tag plus an arbitrary payload.

    ``words`` defaults to ``1 + payload_words(payload)`` but can be
    overridden when a protocol transmits a structure with a known encoded
    size (e.g. a shipped sketch).
    """

    kind: str
    payload: Any = None
    words: int = field(default=-1)

    def __post_init__(self) -> None:
        if self.words < 0:
            object.__setattr__(self, "words", 1 + payload_words(self.payload))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Message({self.kind!r}, {self.payload!r}, words={self.words})"
