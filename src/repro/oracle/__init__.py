"""Ground truth and guarantee auditing.

The :class:`ExactTracker` maintains the exact global multiset (Fenwick-
backed, so every operation is logarithmic); :mod:`repro.oracle.checker`
compares a protocol's continuous answers against it and reports any
violation of the paper's ε-approximation guarantees.
"""

from repro.oracle.checker import (
    AuditReport,
    audit_heavy_hitter_protocol,
    audit_quantile_protocol,
    audit_rank_protocol,
)
from repro.oracle.exact import ExactTracker

__all__ = [
    "AuditReport",
    "audit_heavy_hitter_protocol",
    "audit_quantile_protocol",
    "audit_rank_protocol",
    "ExactTracker",
]
