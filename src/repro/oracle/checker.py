"""Continuous guarantee audits: protocol answers versus exact ground truth.

Each ``audit_*`` function replays a stream through a protocol, pausing at
fixed checkpoints to compare the coordinator's current answer against the
:class:`~repro.oracle.exact.ExactTracker`. The returned report carries the
worst observed error and every outright violation, which is what
experiment E9 and the integration tests assert on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.oracle.exact import ExactTracker


@dataclass
class AuditReport:
    """Outcome of one continuous audit."""

    checkpoints: int = 0
    violations: list[str] = field(default_factory=list)
    max_error: float = 0.0  # worst error seen, in rank/frequency fraction

    @property
    def ok(self) -> bool:
        """True when no checkpoint violated the guarantee."""
        return not self.violations

    def record(self, error: float) -> None:
        self.checkpoints += 1
        self.max_error = max(self.max_error, error)

    def violation(self, description: str) -> None:
        self.violations.append(description)


def _replay(protocol, oracle: ExactTracker, chunk) -> None:
    for site_id, item in chunk:
        protocol.process(site_id, item)
        oracle.update(item)


def _chunks(stream, checkpoint_every: int):
    for start in range(0, len(stream), checkpoint_every):
        yield stream[start : start + checkpoint_every]


def audit_heavy_hitter_protocol(
    protocol,
    stream,
    phi: float,
    checkpoint_every: int = 500,
) -> AuditReport:
    """Audit the ε-approximate heavy-hitter contract at every checkpoint."""
    oracle = ExactTracker(protocol.params.universe_size)
    report = AuditReport()
    epsilon = protocol.params.epsilon
    for chunk in _chunks(stream, checkpoint_every):
        _replay(protocol, oracle, chunk)
        reported = protocol.heavy_hitters(phi)
        missed, spurious = oracle.heavy_hitter_violations(
            reported, phi, epsilon
        )
        worst = 0.0
        total = max(1, oracle.total)
        for item in missed:
            worst = max(worst, phi - oracle.frequency(item) / total)
        for item in spurious:
            worst = max(
                worst, (phi - epsilon) - oracle.frequency(item) / total
            )
        report.record(worst)
        if missed:
            report.violation(
                f"n={oracle.total}: missed heavy hitters {sorted(missed)}"
            )
        if spurious:
            report.violation(
                f"n={oracle.total}: spurious heavy hitters {sorted(spurious)}"
            )
    return report


def audit_quantile_protocol(
    protocol,
    stream,
    checkpoint_every: int = 500,
) -> AuditReport:
    """Audit the single-quantile contract: |φ' − φ| ≤ ε at every checkpoint."""
    oracle = ExactTracker(protocol.params.universe_size)
    report = AuditReport()
    epsilon = protocol.params.epsilon
    phi = protocol.phi
    for chunk in _chunks(stream, checkpoint_every):
        _replay(protocol, oracle, chunk)
        answer = protocol.quantile()
        offset = oracle.quantile_rank_offset(answer, phi)
        report.record(offset)
        if offset > epsilon:
            report.violation(
                f"n={oracle.total}: quantile {answer} off target by "
                f"{offset:.4f} > eps={epsilon}"
            )
    return report


def audit_rank_protocol(
    protocol,
    stream,
    probe_values: list[int],
    checkpoint_every: int = 500,
) -> AuditReport:
    """Audit the all-quantiles contract: rank error ≤ ε|A| for every probe."""
    oracle = ExactTracker(protocol.params.universe_size)
    report = AuditReport()
    epsilon = protocol.params.epsilon
    for chunk in _chunks(stream, checkpoint_every):
        _replay(protocol, oracle, chunk)
        total = max(1, oracle.total)
        worst = 0.0
        for value in probe_values:
            error = oracle.rank_error(value, protocol.rank(value)) / total
            worst = max(worst, error)
            if error > epsilon:
                report.violation(
                    f"n={oracle.total}: rank({value}) error {error:.4f} > "
                    f"eps={epsilon}"
                )
        report.record(worst)
    return report
