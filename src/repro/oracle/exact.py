"""Exact online tracker of the global stream (the ground-truth oracle)."""

from __future__ import annotations

from collections import Counter

from repro.structures.fenwick import FenwickTree


class ExactTracker:
    """Exact frequencies, ranks, quantiles, and heavy hitters of ``A(t)``."""

    def __init__(self, universe_size: int) -> None:
        self._tree = FenwickTree(universe_size)
        self._counts: Counter[int] = Counter()

    @property
    def total(self) -> int:
        """``|A|`` so far."""
        return self._tree.total

    def update(self, item: int) -> None:
        """Observe one arrival."""
        self._tree.add(item)
        self._counts[item] += 1

    def frequency(self, item: int) -> int:
        """Exact ``mx``."""
        return self._counts[item]

    def rank_leq(self, item: int) -> int:
        """Exact count of items ``≤ item``."""
        return self._tree.prefix_sum(item)

    def rank_less(self, item: int) -> int:
        """Exact count of items ``< item``."""
        return self._tree.prefix_sum(item - 1)

    def quantile(self, phi: float) -> int:
        """The exact φ-quantile."""
        return self._tree.quantile(phi)

    def heavy_hitters(self, phi: float) -> set[int]:
        """Exact ``{x : mx ≥ φ|A|}``."""
        threshold = phi * self.total
        return {
            item for item, cnt in self._counts.items() if cnt >= threshold
        }

    def is_valid_quantile(self, value: int, phi: float, epsilon: float) -> bool:
        """Paper's definition: is ``value`` a φ'-quantile, |φ'−φ| ≤ ε?

        True iff at most ``(φ+ε)|A|`` items are smaller than ``value`` and at
        most ``(1−φ+ε)|A|`` items are greater.
        """
        total = self.total
        if total == 0:
            return True
        smaller = self.rank_less(value)
        greater = total - self.rank_leq(value)
        return (
            smaller <= (phi + epsilon) * total
            and greater <= (1 - phi + epsilon) * total
        )

    def heavy_hitter_violations(
        self, reported: set[int], phi: float, epsilon: float
    ) -> tuple[set[int], set[int]]:
        """(missed, spurious) items violating the ε-approximate HH contract.

        ``missed``: true φ-heavy hitters absent from ``reported``;
        ``spurious``: reported items with frequency below ``(φ−ε)|A|``.
        """
        total = self.total
        missed = {
            item
            for item, cnt in self._counts.items()
            if cnt >= phi * total and item not in reported
        }
        spurious = {
            item
            for item in reported
            if self._counts[item] < (phi - epsilon) * total
        }
        return missed, spurious

    def rank_error(self, item: int, estimated_rank: float) -> float:
        """Absolute error of an estimated ``count(≤ item)``, in items."""
        return abs(estimated_rank - self.rank_leq(item))

    def quantile_rank_offset(self, value: int, phi: float) -> float:
        """How far ``value`` is from the exact φ-quantile, in rank fraction.

        Zero when ``value`` is an exact φ-quantile; the paper's guarantee is
        that this never exceeds ε. Tie-aware: uses the closest point of the
        rank window ``[count(<v), count(≤v)]`` to the target ``φ|A|``.
        """
        total = self.total
        if total == 0:
            return 0.0
        target = phi * total
        lo = self.rank_less(value)
        hi = self.rank_leq(value)
        if lo <= target <= hi:
            return 0.0
        return (lo - target if target < lo else target - hi) / total
