"""Reproduction of *Optimal Tracking of Distributed Heavy Hitters and
Quantiles* (Ke Yi, Qin Zhang — PODS 2009).

The package simulates the distributed streaming model (``k`` sites, one
coordinator, instant two-way channels, word-level communication accounting)
and implements the paper's three optimal tracking protocols plus the
baselines and lower-bound constructions its analysis compares against.

Quickstart::

    from repro import HeavyHitterProtocol, TrackingParams

    protocol = HeavyHitterProtocol(TrackingParams(num_sites=8, epsilon=0.02))
    for site_id, item in arrivals:          # item in {1..universe_size}
        protocol.process(site_id, item)
    print(protocol.heavy_hitters(phi=0.05)) # eps-approximate, at all times
    print(protocol.stats.words)             # total communication in words

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
claim-by-claim reproduction record.
"""

from repro.baselines import (
    CGMR05Protocol,
    DistributedCounter,
    NaiveForwardProtocol,
    PeriodicPollProtocol,
    SamplingProtocol,
    one_shot_heavy_hitters,
    one_shot_quantile,
)
from repro.common import TrackingParams
from repro.common.errors import (
    ConfigurationError,
    ProtocolError,
    ReproError,
    UniverseError,
)
from repro.core import (
    AllQuantilesProtocol,
    HeavyHitterProtocol,
    QuantileProtocol,
)
from repro.harness import ExperimentResult, run_experiment
from repro.network import CommSnapshot, CommStats, Message
from repro.oracle import (
    ExactTracker,
    audit_heavy_hitter_protocol,
    audit_quantile_protocol,
    audit_rank_protocol,
)

__version__ = "1.0.0"

__all__ = [
    "TrackingParams",
    "HeavyHitterProtocol",
    "QuantileProtocol",
    "AllQuantilesProtocol",
    "CGMR05Protocol",
    "DistributedCounter",
    "NaiveForwardProtocol",
    "PeriodicPollProtocol",
    "SamplingProtocol",
    "one_shot_heavy_hitters",
    "one_shot_quantile",
    "ExactTracker",
    "audit_heavy_hitter_protocol",
    "audit_quantile_protocol",
    "audit_rank_protocol",
    "CommSnapshot",
    "CommStats",
    "Message",
    "ExperimentResult",
    "run_experiment",
    "ReproError",
    "ConfigurationError",
    "ProtocolError",
    "UniverseError",
    "__version__",
]
