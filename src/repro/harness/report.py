"""Plain-text table rendering for experiment reports."""

from __future__ import annotations

from typing import Any, Sequence


def format_number(value: Any) -> str:
    """Compact human formatting: ints grouped, floats to 4 significant digits."""
    if isinstance(value, bool) or value is None:
        return str(value)
    if isinstance(value, int):
        return f"{value:,}"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.4g}"
    return str(value)


def ascii_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Render a fixed-width table with a header rule."""
    cells = [[format_number(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in cells:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def render_row(row: Sequence[str]) -> str:
        return "  ".join(cell.rjust(width) for cell, width in zip(row, widths))

    lines = [render_row(headers), render_row(["-" * width for width in widths])]
    lines.extend(render_row(row) for row in cells)
    return "\n".join(lines)
