"""Experiment harness: descriptors, scaling fits, and report formatting."""

from repro.harness.experiment import ExperimentResult, run_experiment
from repro.harness.registry import EXPERIMENTS, experiment_ids
from repro.harness.report import ascii_table, format_number
from repro.harness.scaling import (
    doubling_ratios,
    fit_log_r2,
    fit_loglog_slope,
    linear_r2,
)

__all__ = [
    "ExperimentResult",
    "run_experiment",
    "EXPERIMENTS",
    "experiment_ids",
    "ascii_table",
    "format_number",
    "doubling_ratios",
    "fit_log_r2",
    "fit_loglog_slope",
    "linear_r2",
]
