"""Experiment descriptors and the shared run entry point."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.harness.report import ascii_table


@dataclass
class ExperimentResult:
    """Outcome of one experiment: a table plus claim-vs-measured notes."""

    experiment_id: str
    title: str
    paper_claim: str
    headers: list[str]
    rows: list[list] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    @property
    def table(self) -> str:
        """The result table rendered as fixed-width text."""
        return ascii_table(self.headers, self.rows)

    def render(self) -> str:
        """Full human-readable report block."""
        lines = [
            f"== {self.experiment_id}: {self.title} ==",
            f"paper claim: {self.paper_claim}",
            "",
            self.table,
        ]
        if self.notes:
            lines.append("")
            lines.extend(f"note: {note}" for note in self.notes)
        return "\n".join(lines)


def run_experiment(experiment_id: str, quick: bool = True) -> ExperimentResult:
    """Run one experiment by id (see :mod:`repro.harness.registry`)."""
    from repro.harness.registry import EXPERIMENTS

    key = experiment_id.upper()
    if key not in EXPERIMENTS:
        known = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(f"unknown experiment {experiment_id!r}; have {known}")
    return EXPERIMENTS[key](quick=quick)
