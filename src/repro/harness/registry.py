"""Registry mapping experiment ids to their run functions."""

from __future__ import annotations

from typing import Callable

from repro.harness.experiment import ExperimentResult
from repro.harness.experiments import (
    a01_hh_trigger,
    a02_quantile_drift,
    a03_allq_theta,
    e01_hh_vs_n,
    e02_hh_vs_k_eps,
    e03_hh_lower,
    e04_quantile_scaling,
    e05_median_lower,
    e06_allq_scaling,
    e07_vs_cgmr05,
    e08_tree_structure,
    e09_accuracy,
    e10_sketch_sites,
    e11_sampling,
    e12_oneshot_gap,
    e13_heuristic_topk,
)

EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    "E1": e01_hh_vs_n.run,
    "E2": e02_hh_vs_k_eps.run,
    "E3": e03_hh_lower.run,
    "E4": e04_quantile_scaling.run,
    "E5": e05_median_lower.run,
    "E6": e06_allq_scaling.run,
    "E7": e07_vs_cgmr05.run,
    "E8": e08_tree_structure.run,
    "E9": e09_accuracy.run,
    "E10": e10_sketch_sites.run,
    "E11": e11_sampling.run,
    "E12": e12_oneshot_gap.run,
    "E13": e13_heuristic_topk.run,
    "A1": a01_hh_trigger.run,
    "A2": a02_quantile_drift.run,
    "A3": a03_allq_theta.run,
}


def experiment_ids() -> list[str]:
    """All experiment ids: reproductions (E*) first, then ablations (A*)."""
    return sorted(EXPERIMENTS, key=lambda eid: (eid[0] != "E", int(eid[1:])))
