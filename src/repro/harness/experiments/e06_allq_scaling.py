"""E6 — Theorem 4.1: all-quantile cost ``O(k/ε · log n · log²(1/ε))``."""

from __future__ import annotations

import math

from repro.harness.experiment import ExperimentResult
from repro.harness.runners import all_quantiles_run
from repro.harness.scaling import fit_log_r2, fit_loglog_slope


def _normaliser(n: int, k: int, epsilon: float) -> float:
    return (k / epsilon) * math.log(n) * math.log2(1 / epsilon) ** 2


def run(quick: bool = True) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="E6",
        title="All-quantiles communication scaling",
        paper_claim="total cost O(k/eps * log n * log^2(1/eps))  [Theorem 4.1]",
        headers=["sweep", "value", "messages", "words", "words/bound"],
    )
    k0, eps0 = 8, 0.1
    sizes = [15_000, 30_000, 60_000] if quick else [25_000, 50_000, 100_000, 200_000]
    words_n = []
    for n in sizes:
        _protocol, totals = all_quantiles_run(n=n, k=k0, epsilon=eps0)
        result.rows.append(
            [
                "n",
                n,
                totals.messages,
                totals.words,
                totals.words / _normaliser(n, k0, eps0),
            ]
        )
        words_n.append(totals.words)
    epsilons = [0.2, 0.1, 0.05] if quick else [0.2, 0.1, 0.05, 0.025]
    n_fixed = sizes[-1]
    words_e = []
    for epsilon in epsilons:
        _protocol, totals = all_quantiles_run(n=n_fixed, k=k0, epsilon=epsilon)
        result.rows.append(
            [
                "eps",
                epsilon,
                totals.messages,
                totals.words,
                totals.words / _normaliser(n_fixed, k0, epsilon),
            ]
        )
        words_e.append(totals.words)
    ks = [2, 4, 8] if quick else [2, 4, 8, 16]
    words_k = []
    for k in ks:
        _protocol, totals = all_quantiles_run(n=n_fixed, k=k, epsilon=eps0)
        result.rows.append(
            [
                "k",
                k,
                totals.messages,
                totals.words,
                totals.words / _normaliser(n_fixed, k, eps0),
            ]
        )
        words_k.append(totals.words)
    log_b, log_r2 = fit_log_r2(sizes, words_n)
    slope_e, r2_e = fit_loglog_slope(
        [1 / epsilon for epsilon in epsilons], words_e
    )
    result.notes.append(
        f"vs n: logarithmic fit r2={log_r2:.3f}; vs 1/eps: log-log slope "
        f"{slope_e:.2f} (r2={r2_e:.3f}), expected ~1 + polylog drift; "
        "words/bound column should stay roughly flat across all sweeps"
    )
    return result
