"""E5 — Theorem 3.2: the median lower-bound construction.

Validates that the §3.2 two-value stream really flips the exact median
``Ω(log n / ε)`` times, and that our protocol tracks it correctly at a cost
within the ``O(k/ε · log n)`` envelope even on this adversarial input (the
Ω(k)-per-change half of the argument is exercised by E3's threshold game,
which §3.2 invokes verbatim)."""

from __future__ import annotations

import math

from repro.common.params import TrackingParams
from repro.core.quantile import QuantileProtocol
from repro.harness.experiment import ExperimentResult
from repro.lowerbounds import count_median_changes, median_lower_bound_stream
from repro.oracle import audit_quantile_protocol


def run(quick: bool = True) -> ExperimentResult:
    epsilons = [0.04, 0.02] if quick else [0.04, 0.02, 0.01]
    n_target = 30_000 if quick else 120_000
    k = 8
    result = ExperimentResult(
        experiment_id="E5",
        title="Median lower-bound construction (two-value stream)",
        paper_claim=(
            "median changes Omega(log n / eps) times; with Omega(k) "
            "messages per change => Omega(k/eps log n)  [Theorem 3.2]"
        ),
        headers=[
            "eps",
            "n",
            "median flips",
            "~log(n)/eps",
            "protocol words",
            "max rank err",
        ],
    )
    for epsilon in epsilons:
        items, _rounds = median_lower_bound_stream(epsilon, n_target)
        flips = count_median_changes(items)
        protocol = QuantileProtocol(
            TrackingParams(num_sites=k, epsilon=epsilon, universe_size=4),
            phi=0.5,
        )
        stream = [(index % k, item) for index, item in enumerate(items)]
        report = audit_quantile_protocol(
            protocol, stream, checkpoint_every=max(200, len(items) // 100)
        )
        predicted = math.log(len(items)) / epsilon
        result.rows.append(
            [
                epsilon,
                len(items),
                flips,
                predicted,
                protocol.stats.words,
                report.max_error,
            ]
        )
        if not report.ok:
            result.notes.append(
                f"eps={epsilon}: {len(report.violations)} guarantee "
                f"violations (first: {report.violations[0]})"
            )
    result.notes.append(
        "flips scale like log(n)/eps, the Lemma's change count; the "
        "protocol stays correct (max rank err <= eps) while paying the "
        "per-change communication the bound says is unavoidable"
    )
    return result
