"""E9 — the at-all-times guarantee: continuous audits of all protocols.

Every protocol's defining property is that its answer is ε-correct at
*every* time step, not just at the end. This experiment replays hostile
workload/partitioner combinations, auditing against the exact oracle at
fixed checkpoints, and reports the worst error ever observed.
"""

from __future__ import annotations

from repro.common.params import TrackingParams
from repro.core.all_quantiles import AllQuantilesProtocol
from repro.core.heavy_hitters import HeavyHitterProtocol
from repro.core.quantile import QuantileProtocol
from repro.harness.experiment import ExperimentResult
from repro.oracle import (
    audit_heavy_hitter_protocol,
    audit_quantile_protocol,
    audit_rank_protocol,
)
from repro.workloads import (
    hash_partitioner,
    make_stream,
    mixture_stream,
    round_robin_partitioner,
    shifting_stream,
    skewed_partitioner,
    uniform_stream,
)

_UNIVERSE = 1 << 14
_HEAVY = {100: 0.12, 2000: 0.08, 30000 % _UNIVERSE: 0.06}


def run(quick: bool = True) -> ExperimentResult:
    n = 15_000 if quick else 60_000
    k, epsilon, phi = 6, 0.05, 0.1
    checkpoint = max(200, n // 60)
    result = ExperimentResult(
        experiment_id="E9",
        title="Continuous accuracy audit (all protocols, hostile partitions)",
        paper_claim="answers are eps-correct at ALL times (Thms 2.1/3.1/4.1)",
        headers=[
            "protocol",
            "partitioner",
            "checkpoints",
            "max err (frac)",
            "violations",
        ],
    )
    partitioners = {
        "round-robin": round_robin_partitioner,
        "hash": hash_partitioner,
        "skewed": skewed_partitioner,
    }
    params = TrackingParams(num_sites=k, epsilon=epsilon, universe_size=_UNIVERSE)
    for name, partitioner in partitioners.items():
        stream = make_stream(
            mixture_stream,
            partitioner,
            n,
            _UNIVERSE,
            k,
            seed=7,
            heavy_items=_HEAVY,
        )
        protocol = HeavyHitterProtocol(params)
        report = audit_heavy_hitter_protocol(
            protocol, stream, phi=phi, checkpoint_every=checkpoint
        )
        result.rows.append(
            [
                "heavy-hitters",
                name,
                report.checkpoints,
                report.max_error,
                len(report.violations),
            ]
        )
    for name, partitioner in partitioners.items():
        stream = make_stream(
            shifting_stream, partitioner, n, _UNIVERSE, k, seed=11
        )
        protocol = QuantileProtocol(params, phi=0.5)
        report = audit_quantile_protocol(
            protocol, stream, checkpoint_every=checkpoint
        )
        result.rows.append(
            [
                "median",
                name,
                report.checkpoints,
                report.max_error,
                len(report.violations),
            ]
        )
    probes = [1 << 4, 1 << 8, 1 << 11, 1 << 13, _UNIVERSE - 5]
    for name, partitioner in partitioners.items():
        stream = make_stream(
            uniform_stream, partitioner, n, _UNIVERSE, k, seed=13
        )
        protocol = AllQuantilesProtocol(params)
        report = audit_rank_protocol(
            protocol, stream, probe_values=probes, checkpoint_every=checkpoint
        )
        result.rows.append(
            [
                "all-quantiles",
                name,
                report.checkpoints,
                report.max_error,
                len(report.violations),
            ]
        )
    result.notes.append(
        "violations must be 0 everywhere; max err stays below eps=0.05"
    )
    return result
