"""E2 — Theorem 2.1: heavy-hitter cost is linear in ``k`` and ``1/ε``."""

from __future__ import annotations

from repro.harness.experiment import ExperimentResult
from repro.harness.runners import hh_run
from repro.harness.scaling import fit_loglog_slope


def run(quick: bool = True) -> ExperimentResult:
    n = 40_000 if quick else 150_000
    ks = [2, 4, 8, 16] if quick else [2, 4, 8, 16, 32]
    epsilons = [0.1, 0.05, 0.025] if quick else [0.1, 0.05, 0.025, 0.0125]
    result = ExperimentResult(
        experiment_id="E2",
        title="Heavy-hitter communication vs k and vs 1/eps",
        paper_claim="cost linear in k and in 1/eps  [Theorem 2.1]",
        headers=["sweep", "value", "messages", "words"],
    )
    words_k = []
    for k in ks:
        _protocol, totals = hh_run(n=n, k=k, epsilon=0.05)
        result.rows.append(["k", k, totals.messages, totals.words])
        words_k.append(totals.words)
    words_eps = []
    for epsilon in epsilons:
        _protocol, totals = hh_run(n=n, k=8, epsilon=epsilon)
        result.rows.append(["eps", epsilon, totals.messages, totals.words])
        words_eps.append(totals.words)
    slope_k, r2_k = fit_loglog_slope(ks, words_k)
    inv_eps = [1 / epsilon for epsilon in epsilons]
    slope_e, r2_e = fit_loglog_slope(inv_eps, words_eps)
    result.notes.append(
        f"cost vs k: log-log slope {slope_k:.3f} (r2={r2_k:.3f}); "
        "~1 confirms linear-in-k"
    )
    result.notes.append(
        f"cost vs 1/eps: log-log slope {slope_e:.3f} (r2={r2_e:.3f}); "
        "~1 confirms linear-in-1/eps"
    )
    return result
