"""E13 — §1's motivation: heuristics vs worst-case-optimal tracking.

The paper's introduction observes that earlier distributed monitoring work
(Babcock–Olston top-k and its heavy-hitter adaptations) "remains heuristic
in nature". This experiment makes that concrete: on a *stable* skewed
stream the heuristic's slack-based silence is extremely cheap, but on a
*churning* stream — two items repeatedly swapping ranks at the top-k
boundary — its global resolutions fire constantly, while this paper's
protocol keeps its ``O(k/ε·log n)`` budget on both workloads.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.topk import TopKHeuristicProtocol
from repro.common.params import TrackingParams
from repro.common.rng import make_rng
from repro.core.heavy_hitters import HeavyHitterProtocol
from repro.harness.experiment import ExperimentResult

_UNIVERSE = 1 << 14
_K_ITEMS = 8


def _stable_stream(rng, n):
    """Zipf-like stable ranks: item i gets weight 1/i."""
    weights = 1.0 / np.arange(1, 41)
    weights /= weights.sum()
    return rng.choice(40, size=n, p=weights) + 1


def _churn_stream(rng, n):
    """Background plus two items kept perfectly tied at the k-th rank.

    Slack-based heuristics rely on a frequency *separation* around the
    k-th rank; the alternating pair keeps the boundary gap at ~1 count, so
    every resolution installs a tiny slack and the next few arrivals
    breach it again — the adversarial regime.
    """
    items = _stable_stream(rng, n)
    # ~3% of traffic each puts the pair right at ranks 8-9 of the zipf
    # background — the boundary for k_items = 8; alternation keeps them tied.
    churny = np.flatnonzero(rng.random(size=n) < 0.06)
    items[churny[0::2]] = 100
    items[churny[1::2]] = 101
    return items


def run(quick: bool = True) -> ExperimentResult:
    n = 25_000 if quick else 100_000
    k = 8
    epsilon = 0.02
    result = ExperimentResult(
        experiment_id="E13",
        title="Heuristic top-k monitoring vs worst-case-optimal tracking",
        paper_claim=(
            "prior approaches are 'heuristic in nature' [4,16]: fine on "
            "stable streams, no worst-case guarantee under churn (§1); "
            "the paper's protocol is worst-case O(k/eps log n) on both"
        ),
        headers=["workload", "protocol", "words", "resolutions"],
    )
    params = TrackingParams(num_sites=k, epsilon=epsilon, universe_size=_UNIVERSE)
    for label, generator in (("stable", _stable_stream), ("churn", _churn_stream)):
        rng = make_rng(43)
        items = generator(rng, n)
        stream = [(index % k, int(item)) for index, item in enumerate(items)]
        # slack_fraction = 2: the heuristic tolerates staleness up to twice
        # the boundary gap in exchange for silence, its favourable regime.
        heuristic = TopKHeuristicProtocol(
            params, k_items=_K_ITEMS, slack_fraction=2.0
        )
        heuristic.process_stream(stream)
        ours = HeavyHitterProtocol(params)
        ours.process_stream(stream)
        result.rows.append(
            [label, "heuristic top-k", heuristic.stats.words, heuristic.resolutions]
        )
        result.rows.append([label, "ours (Thm 2.1)", ours.stats.words, "-"])
    result.notes.append(
        "the heuristic's resolutions (each a global O(k)+ poll) multiply "
        "under boundary churn while our protocol's cost barely moves — "
        "the worst-case robustness the paper's analysis buys"
    )
    return result
