"""One module per reproduced claim; see DESIGN.md §4 for the index."""
