"""A3 — ablation: the all-quantiles count resolution ``θ``.

§4 sets ``θ = ε/(2h)`` so that the ``h`` partial sums on a root-to-leaf
query path contribute at most ``εm/2`` of error. Scaling θ up makes count
updates lazier (fewer ``aq.count`` messages) but inflates rank error and
destabilises the splitting-element invariant; scaling it down pays more
for accuracy the guarantee does not need. The cost shows the
``log²(1/ε)`` factor at work: halving θ roughly doubles the count traffic.
"""

from __future__ import annotations

from repro.common.params import TrackingParams
from repro.core.all_quantiles import AllQuantilesProtocol
from repro.harness.experiment import ExperimentResult
from repro.oracle import audit_rank_protocol
from repro.workloads import make_stream, round_robin_partitioner, uniform_stream

_UNIVERSE = 1 << 14


def run(quick: bool = True) -> ExperimentResult:
    n = 15_000 if quick else 60_000
    k, epsilon = 6, 0.1
    scales = [0.5, 1.0, 2.0, 4.0]
    result = ExperimentResult(
        experiment_id="A3",
        title="Ablation: all-quantiles count resolution theta (paper: eps/2h)",
        paper_claim=(
            "theta = eps/(2h) balances the h-term query error against the "
            "O(k h / theta) count-update cost per round (§4)"
        ),
        headers=["theta scale", "words", "count msgs", "max err (frac)", "violations"],
    )
    stream = make_stream(
        uniform_stream, round_robin_partitioner, n, _UNIVERSE, k, seed=29
    )
    probes = [1 << 4, 1 << 9, 1 << 12, _UNIVERSE - 9]
    params = TrackingParams(num_sites=k, epsilon=epsilon, universe_size=_UNIVERSE)
    for scale in scales:
        protocol = AllQuantilesProtocol(params, theta_scale=scale)
        report = audit_rank_protocol(
            protocol,
            stream,
            probe_values=probes,
            checkpoint_every=max(200, n // 60),
        )
        result.rows.append(
            [
                scale,
                protocol.stats.words,
                protocol.stats.by_kind["aq.count"],
                report.max_error,
                len(report.violations),
            ]
        )
    result.notes.append(
        "count traffic scales ~1/theta while max rank error scales ~theta; "
        "the paper's theta keeps the error budget split evenly between the "
        "partial sums and the leaf granularity"
    )
    return result
