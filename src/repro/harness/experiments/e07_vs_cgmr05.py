"""E7 — the headline separation: ours vs Cormode et al. 2005 ([7]).

The paper improves the all-quantile tracking cost from ``O(k/ε² · log n)``
to ``O(k/ε · log n · polylog(1/ε))``: the cost *ratio* should therefore
grow like ``Θ(1/ε)`` (up to polylogs) as ``ε`` shrinks, with our protocol
winning everywhere except very coarse ``ε``.
"""

from __future__ import annotations

from repro.common.params import TrackingParams
from repro.baselines import CGMR05Protocol
from repro.harness.experiment import ExperimentResult
from repro.harness.runners import all_quantiles_run, drive
from repro.workloads import make_stream, round_robin_partitioner, uniform_stream

_UNIVERSE = 1 << 16


def run(quick: bool = True) -> ExperimentResult:
    n = 40_000 if quick else 150_000
    k = 8
    epsilons = [0.2, 0.1, 0.05, 0.025] if quick else [0.2, 0.1, 0.05, 0.025, 0.0125]
    result = ExperimentResult(
        experiment_id="E7",
        title="All-quantiles: this paper vs CGMR05 summary shipping",
        paper_claim=(
            "ours O(k/eps log n polylog(1/eps)) vs [7]'s O(k/eps^2 log n): "
            "ratio grows ~1/eps as eps shrinks"
        ),
        headers=["eps", "ours (words)", "cgmr05 (words)", "cgmr05/ours"],
    )
    ratios = []
    for epsilon in epsilons:
        _ours, ours_totals = all_quantiles_run(n=n, k=k, epsilon=epsilon)
        baseline = CGMR05Protocol(
            TrackingParams(num_sites=k, epsilon=epsilon, universe_size=_UNIVERSE)
        )
        stream = make_stream(
            uniform_stream, round_robin_partitioner, n, _UNIVERSE, k, seed=0
        )
        baseline_totals = drive(baseline, stream)
        ratio = baseline_totals.words / max(1, ours_totals.words)
        ratios.append(ratio)
        result.rows.append(
            [epsilon, ours_totals.words, baseline_totals.words, ratio]
        )
    if len(ratios) >= 2 and ratios[-1] > ratios[0]:
        per_halving = (ratios[-1] / ratios[0]) ** (1 / (len(ratios) - 1))
        result.notes.append(
            f"cgmr05/ours cost ratio grows from {ratios[0]:.2f} at "
            f"eps={epsilons[0]} to {ratios[-1]:.2f} at eps={epsilons[-1]} "
            f"(x{per_halving:.2f} per eps halving) — the Theta(1/eps) "
            "separation of the paper, asymptotically"
        )
        if ratios[-1] < 1:
            # ratio ~ c/eps => ratio reaches 1 at eps ~ eps_last * ratio_last.
            crossover = epsilons[-1] * ratios[-1]
            result.notes.append(
                "at these small streams our constants (the log^2(1/eps) "
                "machinery) still dominate — extrapolating the measured "
                f"growth, ours wins in absolute words below eps ~ "
                f"{crossover:.3f}"
            )
    else:
        result.notes.append(
            "WARNING: expected the cost ratio to grow as eps shrinks"
        )
    return result
