"""E3 — Theorem 2.4: the heavy-hitter lower-bound constructions.

Three measurements, mirroring the proof's structure:

1. Lemma 2.2's stream really produces ``Ω(log n / ε)`` heavy-hitter set
   changes, growing like ``log n / ε``.
2. Lemma 2.3's threshold game: against *any correct* detector (thresholds
   summing below the transition batch), the adversary forces ``Ω(k)``
   messages per change — we play the game against the strongest legal
   threshold strategy and watch the count grow linearly in ``k``.
3. The dichotomy: a detector whose thresholds violate the sum constraint
   communicates nothing but **misses the change**.

Our own protocol is run on the Lemma 2.2 stream as well, showing its real
cost sits above the ``changes × k`` floor the theorem establishes.
"""

from __future__ import annotations

import math

from repro.common.params import TrackingParams
from repro.core.heavy_hitters import HeavyHitterProtocol
from repro.harness.experiment import ExperimentResult
from repro.lowerbounds import (
    CheatingDetector,
    CorrectDetector,
    count_heavy_hitter_changes,
    lemma22_stream,
    play_adversarial,
    play_spread,
)

_GROUP_SIZE = 4
_PHI = 0.13


def run(quick: bool = True) -> ExperimentResult:
    n_target = 40_000 if quick else 150_000
    ks = [4, 8, 16, 32] if quick else [4, 8, 16, 32, 64]
    batch = 4_096
    items, windows, epsilon = lemma22_stream(_GROUP_SIZE, _PHI, n_target)
    changes = count_heavy_hitter_changes(items, _PHI, epsilon)
    result = ExperimentResult(
        experiment_id="E3",
        title="Heavy-hitter lower bound: changes and the threshold game",
        paper_claim=(
            "Omega(log n / eps) HH-set changes (Lemma 2.2) x Omega(k) "
            "messages per change (Lemma 2.3) => Omega(k/eps log n) total "
            "[Theorem 2.4]"
        ),
        headers=[
            "k",
            "game msgs (adversary)",
            "game msgs (spread)",
            "msgs/k",
            "cheater msgs",
            "cheater detected?",
        ],
    )
    # The construction's own prediction: l changes per round, with m growing
    # by phi/(phi - eps') per round — Theta(log n / eps) overall.
    eps_prime = 2 * epsilon
    growth = math.log(_PHI / (_PHI - eps_prime))
    initial = len(items) / (_PHI / (_PHI - eps_prime)) ** (
        len(windows) / _GROUP_SIZE
    )
    predicted = _GROUP_SIZE * math.log(len(items) / initial) / growth
    result.notes.append(
        f"Lemma 2.2 stream: n={len(items):,}, eps={epsilon:.4f}, "
        f"{len(windows)} transition windows; measured HH changes={changes} "
        f"vs construction's l*log_(phi/(phi-eps'))(n/m0) = {predicted:.0f}"
    )
    for k in ks:
        adversarial = play_adversarial(CorrectDetector(k, batch), batch)
        spread = play_spread(CorrectDetector(k, batch), batch)
        cheater = play_adversarial(CheatingDetector(k, batch), batch)
        result.rows.append(
            [
                k,
                adversarial.messages,
                spread.messages,
                adversarial.messages / k,
                cheater.messages,
                cheater.change_detected,
            ]
        )
    result.notes.append(
        "adversary forces ~k/2 or more messages from every correct detector "
        "(msgs/k roughly constant = linear in k); the cheating detector "
        "stays silent and misses the change — the Lemma 2.3 dichotomy"
    )
    # Our protocol on the same stream: cost must sit above the changes*k floor.
    k_demo = 8
    protocol = HeavyHitterProtocol(
        TrackingParams(num_sites=k_demo, epsilon=epsilon, universe_size=64)
    )
    for index, item in enumerate(items):
        protocol.process(index % k_demo, item)
    floor = changes * k_demo
    result.notes.append(
        f"our protocol on this stream (k={k_demo}): "
        f"{protocol.stats.messages:,} messages vs the theorem's floor of "
        f"changes x k = {floor:,}"
    )
    return result
