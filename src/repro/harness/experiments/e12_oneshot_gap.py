"""E12 — §1's observation: one-shot ``O(k/ε)`` vs continuous ``O(k/ε·log n)``.

"Requiring the heavy hitters and quantiles to be tracked at all times
indeed increases the communication complexity, but only by a Θ(log n)
factor." We measure both costs on the same data and check the gap grows
logarithmically with ``n``.
"""

from __future__ import annotations

import math

from repro.baselines import one_shot_heavy_hitters, one_shot_quantile
from repro.harness.experiment import ExperimentResult
from repro.harness.runners import hh_run, quantile_run
from repro.harness.scaling import fit_log_r2
from repro.workloads import (
    make_stream,
    round_robin_partitioner,
    uniform_stream,
    zipf_stream,
)

_UNIVERSE = 1 << 16


def _per_site(stream, k: int) -> list[list[int]]:
    buckets: list[list[int]] = [[] for _ in range(k)]
    for site_id, item in stream:
        buckets[site_id].append(item)
    return buckets


def run(quick: bool = True) -> ExperimentResult:
    k, epsilon, phi = 8, 0.05, 0.1
    sizes = [20_000, 40_000, 80_000] if quick else [25_000, 50_000, 100_000, 200_000]
    result = ExperimentResult(
        experiment_id="E12",
        title="One-shot vs continuous tracking: the Theta(log n) gap",
        paper_claim=(
            "one-shot costs O(k/eps); continuous tracking costs "
            "O(k/eps log n) — a Theta(log n) premium (§1, 'Our results')"
        ),
        headers=[
            "n",
            "continuous HH",
            "one-shot HH",
            "HH gap",
            "continuous median",
            "one-shot median",
            "median gap",
            "ln n",
        ],
    )
    hh_gaps = []
    for n in sizes:
        protocol, totals = hh_run(n=n, k=k, epsilon=epsilon, universe=_UNIVERSE)
        stream = make_stream(
            zipf_stream,
            round_robin_partitioner,
            n,
            _UNIVERSE,
            k,
            seed=0,
            skew=1.2,
        )
        _hitters, oneshot_hh_words = one_shot_heavy_hitters(
            _per_site(stream, k), phi, epsilon
        )
        q_protocol, q_totals = quantile_run(
            n=n, k=k, epsilon=epsilon, universe=_UNIVERSE
        )
        # The same stream the quantile runner used (uniform values).
        q_stream = make_stream(
            uniform_stream, round_robin_partitioner, n, _UNIVERSE, k, seed=0
        )
        _answer, oneshot_q_words = one_shot_quantile(
            _per_site(q_stream, k), 0.5, epsilon
        )
        hh_gap = totals.words / max(1, oneshot_hh_words)
        q_gap = q_totals.words / max(1, oneshot_q_words)
        hh_gaps.append(hh_gap)
        result.rows.append(
            [
                n,
                totals.words,
                oneshot_hh_words,
                hh_gap,
                q_totals.words,
                oneshot_q_words,
                q_gap,
                math.log(n),
            ]
        )
    _b, r2 = fit_log_r2(sizes, hh_gaps)
    result.notes.append(
        f"the continuous/one-shot gap grows with ln n (fit r2={r2:.3f}); "
        "one-shot cost itself is n-independent, as the paper observes"
    )
    return result
