"""A2 — ablation: the quantile protocol's recenter trigger.

§3.1 recenters ``M`` when the estimated drift reaches ``εm/2``; the total
error budget is ``εm/4 (recenter precision) + 2·εm/8 (counter lag) + εm/2
(trigger) ≤ εm``. Sweeping the trigger fraction shows the trade: eager
recentering (fraction 0.25) buys accuracy headroom with more O(k) polls;
lazy recentering (fraction 1.0) saves polls but eats the entire error
budget — the audit's max error approaches (and can cross) ε.
"""

from __future__ import annotations

from repro.common.params import TrackingParams
from repro.core.quantile import QuantileProtocol
from repro.harness.experiment import ExperimentResult
from repro.oracle import audit_quantile_protocol
from repro.workloads import make_stream, round_robin_partitioner, shifting_stream

_UNIVERSE = 1 << 14


def run(quick: bool = True) -> ExperimentResult:
    n = 20_000 if quick else 80_000
    k, epsilon = 6, 0.05
    fractions = [0.25, 0.5, 0.75, 1.0]
    result = ExperimentResult(
        experiment_id="A2",
        title="Ablation: quantile recenter trigger (paper uses eps*m/2)",
        paper_claim=(
            "trigger at eps*m/2 leaves total error 3eps/4·m + eps/4·m <= "
            "eps*m (§3.1 correctness); lazier triggers exhaust the budget"
        ),
        headers=["fraction", "words", "recenters", "max err (frac)", "violations"],
    )
    stream = make_stream(
        shifting_stream, round_robin_partitioner, n, _UNIVERSE, k, seed=23
    )
    params = TrackingParams(num_sites=k, epsilon=epsilon, universe_size=_UNIVERSE)
    for fraction in fractions:
        protocol = QuantileProtocol(params, phi=0.5, update_fraction=fraction)
        report = audit_quantile_protocol(
            protocol, stream, checkpoint_every=max(200, n // 60)
        )
        result.rows.append(
            [
                fraction,
                protocol.stats.words,
                protocol.recenters,
                report.max_error,
                len(report.violations),
            ]
        )
    result.notes.append(
        "recenters (each an O(k) exact poll) drop as the fraction grows "
        "while max error climbs toward eps — the paper's 1/2 sits at the "
        "knee of the trade-off"
    )
    return result
