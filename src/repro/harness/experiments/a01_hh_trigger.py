"""A1 — ablation: the heavy-hitter site trigger divisor.

The §2.1 trigger is ``ε·Sj.m/(3k)``: the 3 splits the ε error budget so
that ``C.m`` and every ``C.mx`` stay within ``εm/3`` and classification at
margin ``−ε/3`` is always safe. This ablation sweeps the divisor: a lazier
trigger (divisor 1) cuts communication but inflates the estimate error —
and the continuous audit shows the guarantee start to fail — while an
eager trigger (divisor 12) pays ~4x words for accuracy the guarantee does
not need.
"""

from __future__ import annotations

from repro.common.params import TrackingParams
from repro.core.heavy_hitters import HeavyHitterProtocol
from repro.harness.experiment import ExperimentResult
from repro.oracle import audit_heavy_hitter_protocol
from repro.workloads import make_stream, mixture_stream, round_robin_partitioner

_UNIVERSE = 1 << 14
_HEAVY = {90: 0.13, 4500: 0.105, 11111: 0.095}


def run(quick: bool = True) -> ExperimentResult:
    n = 20_000 if quick else 80_000
    k, epsilon, phi = 6, 0.05, 0.1
    divisors = [1, 2, 3, 6, 12]
    result = ExperimentResult(
        experiment_id="A1",
        title="Ablation: heavy-hitter trigger divisor (paper uses 3)",
        paper_claim=(
            "the eps/3 budget split makes classification at margin -eps/3 "
            "safe; lazier triggers break the guarantee, eager ones only "
            "cost more (§2.1 invariants (2),(3))"
        ),
        headers=["divisor", "words", "max err (frac)", "violations"],
    )
    stream = make_stream(
        mixture_stream,
        round_robin_partitioner,
        n,
        _UNIVERSE,
        k,
        seed=19,
        heavy_items=_HEAVY,
    )
    params = TrackingParams(num_sites=k, epsilon=epsilon, universe_size=_UNIVERSE)
    for divisor in divisors:
        protocol = HeavyHitterProtocol(params, trigger_divisor=divisor)
        report = audit_heavy_hitter_protocol(
            protocol, stream, phi=phi, checkpoint_every=max(200, n // 60)
        )
        result.rows.append(
            [
                divisor,
                protocol.stats.words,
                report.max_error,
                len(report.violations),
            ]
        )
    result.notes.append(
        "words scale ~linearly with the divisor; divisors below 3 shrink "
        "the slack the classification margin relies on (violations can "
        "appear on borderline items), matching the paper's choice of 3"
    )
    return result
