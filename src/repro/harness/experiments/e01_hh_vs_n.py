"""E1 — Theorem 2.1: heavy-hitter cost grows as ``Θ(log n)`` in ``n``."""

from __future__ import annotations

import math

from repro.harness.experiment import ExperimentResult
from repro.harness.runners import hh_run
from repro.harness.scaling import fit_log_r2, fit_loglog_slope


def run(quick: bool = True) -> ExperimentResult:
    k, epsilon = 8, 0.05
    sizes = [20_000, 40_000, 80_000] if quick else [25_000, 50_000, 100_000, 200_000, 400_000]
    result = ExperimentResult(
        experiment_id="E1",
        title="Heavy-hitter communication vs stream length n",
        paper_claim="total cost O(k/eps * log n)  [Theorem 2.1]",
        headers=["n", "messages", "words", "words / (k/eps * ln n)"],
    )
    words_by_n = []
    for n in sizes:
        _protocol, totals = hh_run(n=n, k=k, epsilon=epsilon)
        normaliser = (k / epsilon) * math.log(n)
        result.rows.append(
            [n, totals.messages, totals.words, totals.words / normaliser]
        )
        words_by_n.append(totals.words)
    slope, slope_r2 = fit_loglog_slope(sizes, words_by_n)
    log_b, log_r2 = fit_log_r2(sizes, words_by_n)
    result.notes.append(
        f"log-log slope {slope:.3f} (r2={slope_r2:.3f}): far below 1 => "
        "sub-linear in n"
    )
    result.notes.append(
        f"fit words = a + b*ln(n): b={log_b:.1f}, r2={log_r2:.3f} => "
        "logarithmic growth, matching the Theta(log n) claim"
    )
    return result
