"""E4 — Theorem 3.1: single-quantile cost scales as ``O(k/ε · log n)``."""

from __future__ import annotations

import math

from repro.harness.experiment import ExperimentResult
from repro.harness.runners import quantile_run
from repro.harness.scaling import fit_log_r2, fit_loglog_slope


def run(quick: bool = True) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="E4",
        title="Single-quantile (median) communication scaling",
        paper_claim="total cost O(k/eps * log n)  [Theorem 3.1]",
        headers=["sweep", "value", "messages", "words", "words/(k/eps*ln n)"],
    )
    sizes = [20_000, 40_000, 80_000] if quick else [25_000, 50_000, 100_000, 200_000]
    k0, eps0 = 8, 0.05
    words_n = []
    for n in sizes:
        _protocol, totals = quantile_run(n=n, k=k0, epsilon=eps0)
        normaliser = (k0 / eps0) * math.log(n)
        result.rows.append(
            ["n", n, totals.messages, totals.words, totals.words / normaliser]
        )
        words_n.append(totals.words)
    ks = [2, 4, 8, 16] if quick else [2, 4, 8, 16, 32]
    n_fixed = sizes[-1]
    words_k = []
    for k in ks:
        _protocol, totals = quantile_run(n=n_fixed, k=k, epsilon=eps0)
        normaliser = (k / eps0) * math.log(n_fixed)
        result.rows.append(
            ["k", k, totals.messages, totals.words, totals.words / normaliser]
        )
        words_k.append(totals.words)
    epsilons = [0.1, 0.05, 0.025] if quick else [0.1, 0.05, 0.025, 0.0125]
    words_e = []
    for epsilon in epsilons:
        _protocol, totals = quantile_run(n=n_fixed, k=k0, epsilon=epsilon)
        normaliser = (k0 / epsilon) * math.log(n_fixed)
        result.rows.append(
            [
                "eps",
                epsilon,
                totals.messages,
                totals.words,
                totals.words / normaliser,
            ]
        )
        words_e.append(totals.words)
    log_b, log_r2 = fit_log_r2(sizes, words_n)
    slope_k, r2_k = fit_loglog_slope(ks, words_k)
    slope_e, r2_e = fit_loglog_slope(
        [1 / epsilon for epsilon in epsilons], words_e
    )
    result.notes.append(
        f"vs n: words = a + b*ln n with r2={log_r2:.3f} (logarithmic)"
    )
    result.notes.append(
        f"vs k: log-log slope {slope_k:.2f} (r2={r2_k:.3f}); "
        f"vs 1/eps: slope {slope_e:.2f} (r2={r2_e:.3f}); both ~1 => linear"
    )
    return result
