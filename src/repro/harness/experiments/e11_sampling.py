"""E11 — §5: randomized sampling vs the deterministic protocol.

Sampling costs ``O((k + 1/ε²)·polylog)``, the deterministic optimum
``Θ(k/ε · log n)``: sampling wins when ``ε ≫ 1/k`` and loses once
``1/ε²`` dominates ``k/ε`` (i.e. ``ε < 1/k``). The sweep crosses that
boundary and reports who wins on each side.
"""

from __future__ import annotations

from repro.common.params import TrackingParams
from repro.baselines import SamplingProtocol
from repro.harness.experiment import ExperimentResult
from repro.harness.runners import drive, hh_run
from repro.workloads import make_stream, round_robin_partitioner, zipf_stream

_UNIVERSE = 1 << 16


def run(quick: bool = True) -> ExperimentResult:
    n = 40_000 if quick else 150_000
    k = 32
    epsilons = [0.2, 0.1, 0.05, 0.02] if quick else [0.2, 0.1, 0.05, 0.02, 0.01]
    result = ExperimentResult(
        experiment_id="E11",
        title="Randomized sampling (§5) vs deterministic tracking",
        paper_claim=(
            "sampling: O((k + 1/eps^2) polylog); beats the deterministic "
            "Omega(k/eps log n) iff eps = omega(1/k); crossover near eps=1/k"
        ),
        headers=[
            "eps",
            "deterministic (words)",
            "sampling (words)",
            "winner",
            "1/eps^2",
            "k/eps",
        ],
    )
    for epsilon in epsilons:
        _det, det_totals = hh_run(n=n, k=k, epsilon=epsilon, universe=_UNIVERSE)
        sampler = SamplingProtocol(
            TrackingParams(num_sites=k, epsilon=epsilon, universe_size=_UNIVERSE),
            seed=17,
        )
        stream = make_stream(
            zipf_stream, round_robin_partitioner, n, _UNIVERSE, k, seed=0, skew=1.2
        )
        sample_totals = drive(sampler, stream)
        winner = (
            "sampling" if sample_totals.words < det_totals.words else "deterministic"
        )
        result.rows.append(
            [
                epsilon,
                det_totals.words,
                sample_totals.words,
                winner,
                1 / epsilon**2,
                k / epsilon,
            ]
        )
    result.notes.append(
        f"with k={k}, expect sampling to win for eps well above 1/k="
        f"{1 / k:.3f} and the deterministic protocol to win below it"
    )
    return result
