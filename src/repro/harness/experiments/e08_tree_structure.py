"""E8 — Figure 1: structural invariants of the all-quantiles tree.

The paper's figure annotates three properties, each checked here against
the live tree after a long run: Θ(1/ε) leaves each holding Θ(εm) items,
height Θ(log 1/ε), and per-node counts within ``θm`` of truth
(``θ = ε/(2h)``, i.e. error below ``εm/log(1/ε)`` per node)."""

from __future__ import annotations

from repro.core.all_quantiles.tree import height_bound
from repro.harness.experiment import ExperimentResult
from repro.harness.runners import all_quantiles_run
from repro.oracle import ExactTracker
from repro.workloads import make_stream, round_robin_partitioner, uniform_stream

_UNIVERSE = 1 << 16


def run(quick: bool = True) -> ExperimentResult:
    n = 40_000 if quick else 150_000
    k = 8
    epsilons = [0.2, 0.1, 0.05] if quick else [0.2, 0.1, 0.05, 0.025]
    result = ExperimentResult(
        experiment_id="E8",
        title="Figure 1: all-quantiles tree structure",
        paper_claim=(
            "Theta(1/eps) leaves of <= eps*m/2 items, height Theta(log 1/eps), "
            "node-count error < theta*m"
        ),
        headers=[
            "eps",
            "leaves",
            "1/eps",
            "height",
            "h bound",
            "max leaf frac",
            "max count err frac",
            "theta",
        ],
    )
    for epsilon in epsilons:
        protocol, _totals = all_quantiles_run(
            n=n, k=k, epsilon=epsilon, universe=_UNIVERSE
        )
        # Rebuild ground truth to measure true per-node counts.
        oracle = ExactTracker(_UNIVERSE)
        stream = make_stream(
            uniform_stream, round_robin_partitioner, n, _UNIVERSE, k, seed=0
        )
        for _site, item in stream:
            oracle.update(item)
        tree = protocol.tree
        m = protocol._coordinator.round_base
        leaves = tree.leaves()
        max_leaf = max(
            (oracle.rank_leq(leaf.hi - 1) - oracle.rank_less(leaf.lo))
            for leaf in leaves
        )
        max_err = max(
            abs(
                node.su
                - (oracle.rank_leq(node.hi - 1) - oracle.rank_less(node.lo))
            )
            for node in tree.nodes.values()
        )
        theta = protocol._coordinator.theta
        result.rows.append(
            [
                epsilon,
                len(leaves),
                1 / epsilon,
                tree.height(),
                height_bound(epsilon),
                max_leaf / m,
                max_err / m,
                theta,
            ]
        )
    result.notes.append(
        "leaves track Theta(1/eps); height stays under the Theta(log 1/eps) "
        "cap; every leaf holds at most ~eps/2 of the round base m; every "
        "node count is within theta*m of the exact interval count"
    )
    return result
