"""E10 — §2.1/§3.1 small-space remarks: sketch-backed sites.

Replacing exact per-site state with SpaceSaving (heavy hitters) or
Greenwald–Khanna (quantiles) must keep the communication shape intact while
capping per-site memory at ``O(1/ε)`` / ``O(1/ε·log(εn))`` entries.
"""

from __future__ import annotations

from repro.common.params import TrackingParams
from repro.core.heavy_hitters import HeavyHitterProtocol
from repro.core.quantile import QuantileProtocol
from repro.harness.experiment import ExperimentResult
from repro.harness.runners import drive
from repro.oracle import audit_heavy_hitter_protocol, audit_quantile_protocol
from repro.workloads import (
    make_stream,
    mixture_stream,
    round_robin_partitioner,
    uniform_stream,
)

_UNIVERSE = 1 << 14
_HEAVY = {500: 0.15, 9000: 0.09}


def run(quick: bool = True) -> ExperimentResult:
    n = 15_000 if quick else 60_000
    k, epsilon = 6, 0.05
    checkpoint = max(300, n // 40)
    params = TrackingParams(num_sites=k, epsilon=epsilon, universe_size=_UNIVERSE)
    result = ExperimentResult(
        experiment_id="E10",
        title="Small-space variants: sketch-backed sites",
        paper_claim=(
            "SpaceSaving sites: O(1/eps) space, same O(k/eps log n) cost; "
            "GK sites: O(1/eps log(eps n)) space, same cost (§2.1, §3.1)"
        ),
        headers=[
            "protocol",
            "sites",
            "words",
            "max err",
            "violations",
            "max site entries",
        ],
    )
    hh_stream = make_stream(
        mixture_stream,
        round_robin_partitioner,
        n,
        _UNIVERSE,
        k,
        seed=3,
        heavy_items=_HEAVY,
    )
    for label, use_sketch in (("exact", False), ("spacesaving", True)):
        protocol = HeavyHitterProtocol(params, use_sketch_sites=use_sketch)
        report = audit_heavy_hitter_protocol(
            protocol, list(hh_stream), phi=0.12, checkpoint_every=checkpoint
        )
        if use_sketch:
            space = max(
                len(site.sketch.items()) for site in protocol._sites
            )
        else:
            space = max(
                len(site.delta_items) for site in protocol._sites
            )
        result.rows.append(
            [
                "heavy-hitters",
                label,
                protocol.stats.words,
                report.max_error,
                len(report.violations),
                space,
            ]
        )
    q_stream = make_stream(
        uniform_stream, round_robin_partitioner, n, _UNIVERSE, k, seed=5
    )
    for label, use_sketch in (("exact", False), ("gk", True)):
        protocol = QuantileProtocol(params, phi=0.5, use_sketch_sites=use_sketch)
        report = audit_quantile_protocol(
            protocol, list(q_stream), checkpoint_every=checkpoint
        )
        if use_sketch:
            space = max(site.sketch.tuple_count for site in protocol._sites)
        else:
            space = max(site.local_total for site in protocol._sites)
        result.rows.append(
            [
                "median",
                label,
                protocol.stats.words,
                report.max_error,
                len(report.violations),
                space,
            ]
        )
    result.notes.append(
        "sketch-backed sites keep communication within a small constant of "
        "the exact variant while storing far fewer entries per site; the GK "
        "variant trades a small accuracy slack (constants, per the paper)"
    )
    return result
