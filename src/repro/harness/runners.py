"""Shared measurement helpers used by the experiment modules."""

from __future__ import annotations

from repro.common.params import TrackingParams
from repro.core.all_quantiles import AllQuantilesProtocol
from repro.core.heavy_hitters import HeavyHitterProtocol
from repro.core.quantile import QuantileProtocol
from repro.network.accounting import CommSnapshot
from repro.workloads import (
    make_stream,
    round_robin_partitioner,
    uniform_stream,
    zipf_stream,
)


def drive(protocol, stream) -> CommSnapshot:
    """Feed a whole stream through a protocol; returns final comm totals."""
    protocol.process_stream(stream)
    return protocol.stats.snapshot()


def hh_run(
    n: int,
    k: int,
    epsilon: float,
    seed: int = 0,
    skew: float = 1.2,
    universe: int = 1 << 16,
    use_sketch_sites: bool = False,
) -> tuple[HeavyHitterProtocol, CommSnapshot]:
    """Run the heavy-hitter protocol on a Zipf stream; return it + totals."""
    params = TrackingParams(num_sites=k, epsilon=epsilon, universe_size=universe)
    protocol = HeavyHitterProtocol(params, use_sketch_sites=use_sketch_sites)
    stream = make_stream(
        zipf_stream,
        round_robin_partitioner,
        n,
        universe,
        k,
        seed=seed,
        skew=skew,
    )
    return protocol, drive(protocol, stream)


def quantile_run(
    n: int,
    k: int,
    epsilon: float,
    phi: float = 0.5,
    seed: int = 0,
    universe: int = 1 << 16,
    use_sketch_sites: bool = False,
) -> tuple[QuantileProtocol, CommSnapshot]:
    """Run the single-quantile protocol on a uniform stream."""
    params = TrackingParams(num_sites=k, epsilon=epsilon, universe_size=universe)
    protocol = QuantileProtocol(
        params, phi=phi, use_sketch_sites=use_sketch_sites
    )
    stream = make_stream(
        uniform_stream, round_robin_partitioner, n, universe, k, seed=seed
    )
    return protocol, drive(protocol, stream)


def all_quantiles_run(
    n: int,
    k: int,
    epsilon: float,
    seed: int = 0,
    universe: int = 1 << 16,
    use_sketch_sites: bool = False,
) -> tuple[AllQuantilesProtocol, CommSnapshot]:
    """Run the all-quantiles protocol on a uniform stream."""
    params = TrackingParams(num_sites=k, epsilon=epsilon, universe_size=universe)
    protocol = AllQuantilesProtocol(params, use_sketch_sites=use_sketch_sites)
    stream = make_stream(
        uniform_stream, round_robin_partitioner, n, universe, k, seed=seed
    )
    return protocol, drive(protocol, stream)
