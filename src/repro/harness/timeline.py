"""Communication-over-time series and ASCII rendering.

The protocols' costs are *bursty by design*: per-round rebuild spikes at
geometrically spaced stream positions, a trickle of counter updates in
between. This module samples a protocol's ledger as a stream replays and
renders the series as a sparkline, making the round structure visible in
terminal output (used by the timeline example and tests).
"""

from __future__ import annotations

from dataclasses import dataclass

_BARS = " ▁▂▃▄▅▆▇█"


@dataclass(frozen=True)
class TimelinePoint:
    """Ledger state at one sampled stream position."""

    items: int
    messages: int
    words: int


def record_timeline(protocol, stream, samples: int = 64) -> list[TimelinePoint]:
    """Replay ``stream`` through ``protocol``, sampling the ledger.

    Returns ``samples + 1`` points (including the initial zero point), at
    evenly spaced stream positions.
    """
    if samples < 1:
        raise ValueError(f"samples must be >= 1, got {samples!r}")
    total = len(stream)
    step = max(1, total // samples)
    points = [TimelinePoint(0, 0, 0)]
    for start in range(0, total, step):
        for site_id, item in stream[start : start + step]:
            protocol.process(site_id, item)
        snap = protocol.stats.snapshot()
        points.append(
            TimelinePoint(
                items=min(start + step, total),
                messages=snap.messages,
                words=snap.words,
            )
        )
    return points


def words_per_interval(points: list[TimelinePoint]) -> list[int]:
    """Incremental words between consecutive samples."""
    return [
        current.words - previous.words
        for previous, current in zip(points, points[1:])
    ]


def sparkline(values: list[float]) -> str:
    """Render values as a unicode bar sparkline (empty input allowed)."""
    if not values:
        return ""
    top = max(values)
    if top <= 0:
        return _BARS[0] * len(values)
    scale = len(_BARS) - 1
    return "".join(
        _BARS[min(scale, int(value / top * scale + 0.5))] for value in values
    )


def render_timeline(points: list[TimelinePoint], label: str = "words") -> str:
    """Multi-line text block: sparkline plus axis annotations."""
    deltas = words_per_interval(points)
    total = points[-1].words if points else 0
    lines = [
        f"{label}/interval: {sparkline([float(d) for d in deltas])}",
        f"items: 0 .. {points[-1].items:,}   total {label}: {total:,}   "
        f"peak interval: {max(deltas) if deltas else 0:,}",
    ]
    return "\n".join(lines)
