"""Shape tests for scaling experiments.

The reproduction checks the *shape* of each cost curve — logarithmic in
``n``, linear in ``k`` and ``1/ε`` — rather than absolute constants, so
these helpers fit the two candidate models and report goodness of fit.
"""

from __future__ import annotations

import numpy as np


def _as_arrays(xs, ys) -> tuple[np.ndarray, np.ndarray]:
    x = np.asarray(xs, dtype=np.float64)
    y = np.asarray(ys, dtype=np.float64)
    if len(x) != len(y) or len(x) < 2:
        raise ValueError("need at least two (x, y) pairs of equal length")
    return x, y


def _r2(y: np.ndarray, predicted: np.ndarray) -> float:
    residual = float(np.sum((y - predicted) ** 2))
    total = float(np.sum((y - y.mean()) ** 2))
    if total == 0:
        return 1.0
    return 1 - residual / total


def fit_loglog_slope(xs, ys) -> tuple[float, float]:
    """Fit ``y = c·x^slope``; returns ``(slope, r²)`` in log-log space.

    Slope ≈ 1 means linear scaling, ≈ 0 sub-polynomial (e.g. logarithmic),
    ≈ 2 quadratic.
    """
    x, y = _as_arrays(xs, ys)
    lx, ly = np.log(x), np.log(y)
    slope, intercept = np.polyfit(lx, ly, 1)
    return float(slope), _r2(ly, slope * lx + intercept)


def fit_log_r2(xs, ys) -> tuple[float, float]:
    """Fit ``y = a + b·log(x)``; returns ``(b, r²)``.

    An r² near 1 with positive ``b`` is the signature of ``Θ(log n)`` cost
    growth.
    """
    x, y = _as_arrays(xs, ys)
    lx = np.log(x)
    b, a = np.polyfit(lx, y, 1)
    return float(b), _r2(y, a + b * lx)


def linear_r2(xs, ys) -> tuple[float, float]:
    """Fit ``y = a + b·x``; returns ``(b, r²)``."""
    x, y = _as_arrays(xs, ys)
    b, a = np.polyfit(x, y, 1)
    return float(b), _r2(y, a + b * x)


def doubling_ratios(ys) -> list[float]:
    """Successive ratios ``y[i+1]/y[i]`` (for doubling-parameter sweeps).

    Ratios near 2 mean linear growth in the doubled parameter; near 1 mean
    the cost barely depends on it (e.g. only through a log factor).
    """
    values = list(ys)
    return [
        values[index + 1] / values[index]
        for index in range(len(values) - 1)
        if values[index] > 0
    ]
