"""Comparison protocols: the prior work and naive strategies the paper's
bounds are measured against."""

from repro.baselines.cgmr05 import CGMR05Protocol
from repro.baselines.counter import DistributedCounter
from repro.baselines.naive import NaiveForwardProtocol
from repro.baselines.oneshot import one_shot_heavy_hitters, one_shot_quantile
from repro.baselines.polling import PeriodicPollProtocol
from repro.baselines.sampling import SamplingProtocol
from repro.baselines.topk import TopKHeuristicProtocol

__all__ = [
    "TopKHeuristicProtocol",
    "CGMR05Protocol",
    "DistributedCounter",
    "NaiveForwardProtocol",
    "one_shot_heavy_hitters",
    "one_shot_quantile",
    "PeriodicPollProtocol",
    "SamplingProtocol",
]
