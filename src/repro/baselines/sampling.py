"""§5 randomized baseline: coordinator-side Bernoulli sampling.

The paper observes that random sampling tracks both heavy hitters and
quantiles with cost ``O((k + 1/ε²) · polylog(n, k, 1/ε))``, beating the
deterministic ``Ω(k/ε · log n)`` lower bound when ``ε = ω(1/k)``
(experiment E11 locates the crossover).

Protocol: every site forwards each arrival with probability ``p``; when the
coordinator's sample exceeds twice its ``Θ(1/ε²)`` target it halves ``p``,
thins its sample by an independent coin per element (keeping the sample a
uniform Bernoulli-``p`` sample of the whole stream), and broadcasts the new
rate. Expected forwards per halving round: ``O(1/ε²)``; rounds: ``O(log n)``.
"""

from __future__ import annotations

import numpy as np

from repro.common.params import TrackingParams
from repro.common.rng import make_rng, spawn_rngs
from repro.common.validation import require_phi
from repro.network.message import Message
from repro.network.protocol import ContinuousTrackingProtocol, Coordinator, Site
from repro.structures.fenwick import FenwickTree

_MSG_SAMPLE = "smp.item"
_MSG_RATE = "smp.rate"

DEFAULT_SAMPLE_CONSTANT = 16.0


class _SamplingSite(Site):
    def __init__(self, site_id, network, rng: np.random.Generator) -> None:
        super().__init__(site_id, network)
        self._rng = rng
        self.rate = 1.0

    def observe(self, item: int) -> None:
        if self._rng.random() < self.rate:
            self.send(Message(_MSG_SAMPLE, item))

    def on_message(self, message: Message) -> None:
        if message.kind == _MSG_RATE:
            self.rate = float(message.payload)
            return
        super().on_message(message)


class _SamplingCoordinator(Coordinator):
    def __init__(
        self,
        network,
        universe_size: int,
        target_size: int,
        rng: np.random.Generator,
    ) -> None:
        super().__init__(network)
        self._rng = rng
        self._target = target_size
        self.rate = 1.0
        self.sample = FenwickTree(universe_size)
        self.halvings = 0

    def absorb(self, item: int) -> None:
        """Add one sampled item, thinning + rebroadcasting as needed."""
        self.sample.add(item)
        if self.sample.total >= 2 * self._target and self.rate > 1e-12:
            self._halve()

    def on_message(self, site_id: int, message: Message) -> None:
        if message.kind != _MSG_SAMPLE:
            raise ValueError(f"unexpected message kind {message.kind!r}")
        self.absorb(int(message.payload))

    def _halve(self) -> None:
        self.rate /= 2
        self.halvings += 1
        # Independent fair coin per sample element keeps the sample a
        # Bernoulli(rate) sample of the full stream.
        for value in list(self._iter_sample()):
            if self._rng.random() < 0.5:
                self.sample.remove(value)
        self.network.broadcast(Message(_MSG_RATE, self.rate))

    def _iter_sample(self):
        """Yield each sampled element (with multiplicity)."""
        remaining = self.sample.total
        rank = 1
        while rank <= remaining:
            yield self.sample.select(rank)
            rank += 1

    @property
    def estimated_total(self) -> float:
        return self.sample.total / self.rate


class SamplingProtocol(ContinuousTrackingProtocol):
    """Randomized tracking of heavy hitters and quantiles via sampling.

    Guarantees are probabilistic: with the default ``Θ(1/ε²)`` sample the
    error exceeds ``ε`` only with small constant probability per query.
    """

    def __init__(
        self,
        params: TrackingParams,
        seed: int = 0,
        sample_constant: float = DEFAULT_SAMPLE_CONSTANT,
    ) -> None:
        if sample_constant <= 0:
            raise ValueError("sample_constant must be positive")
        self._seed = seed
        self._sample_constant = sample_constant
        super().__init__(params)

    def _build(self) -> None:
        rngs = spawn_rngs(self._seed, self.params.num_sites + 1)
        target = max(
            8, int(self._sample_constant / self.params.epsilon**2)
        )
        self._sites = [
            _SamplingSite(site_id, self.network, rngs[site_id])
            for site_id in range(self.params.num_sites)
        ]
        self._coordinator = _SamplingCoordinator(
            self.network, self.params.universe_size, target, rngs[-1]
        )
        self.network.bind(self._coordinator, self._sites)

    def _site(self, site_id: int) -> Site:
        return self._sites[site_id]

    def _initialize(self, per_site_items: list[list[int]]) -> None:
        # Warm-up items were forwarded verbatim: absorb them all (rate 1).
        for items in per_site_items:
            for item in items:
                self._coordinator.absorb(item)

    # -- queries (probabilistic guarantees) ---------------------------------

    @property
    def sample_size(self) -> int:
        """Current coordinator-side sample size."""
        if self.in_warmup:
            return self.items_processed
        return self._coordinator.sample.total

    @property
    def estimated_total(self) -> float:
        """Unbiased estimate of ``|A|``."""
        if self.in_warmup:
            return float(self.items_processed)
        return self._coordinator.estimated_total

    def heavy_hitters(self, phi: float) -> set[int]:
        """Items whose sampled frequency clears ``(φ − ε/2)`` of the sample."""
        require_phi(phi)
        if self.in_warmup:
            total = max(1, self.items_processed)
            return {
                item
                for item, cnt in self._warmup_counts.items()
                if cnt >= phi * total
            }
        sample = self._coordinator.sample
        if sample.total == 0:
            return set()
        cutoff = (phi - self.params.epsilon / 2) * sample.total
        hitters: set[int] = set()
        rank = 1
        while rank <= sample.total:
            value = sample.select(rank)
            count = sample.count(value)
            if count >= cutoff:
                hitters.add(value)
            rank += count
        return hitters

    def quantile(self, phi: float) -> int:
        """Sample order statistic at ``φ``."""
        require_phi(phi)
        if self.in_warmup:
            ordered = sorted(
                value
                for value, cnt in self._warmup_counts.items()
                for _ in range(cnt)
            )
            return ordered[min(len(ordered) - 1, int(phi * len(ordered)))]
        return self._coordinator.sample.quantile(phi)

    def rank(self, item: int) -> float:
        """Estimated count of items ``≤ item`` (scaled from the sample)."""
        if self.in_warmup:
            return sum(
                cnt
                for value, cnt in self._warmup_counts.items()
                if value <= item
            )
        return self._coordinator.sample.prefix_sum(item) / self._coordinator.rate
