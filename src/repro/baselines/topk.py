"""A Babcock–Olston-style top-k monitoring heuristic.

The paper's §1 recalls that before this work, distributed heavy-hitter
tracking was handled by heuristics, citing Babcock & Olston's distributed
top-k monitoring [4] (adapted to heavy hitters in [16]). This module
implements the essence of that approach so experiments can contrast
"heuristic, great on stable inputs, no worst-case guarantee" with the
paper's worst-case-optimal protocol:

* the coordinator caches a candidate top set and installs *arithmetic
  constraints* at the sites: per-candidate slack budgets derived from the
  last resolution;
* sites stay silent while every tracked item's local drift is within its
  slack; a breach triggers a global *resolution* (poll all sites, recompute
  the exact top set, re-distribute slack).

On slowly-changing streams resolutions are rare and the cost is tiny; on
adversarial streams (frequent rank flips near the boundary) resolutions
fire constantly and the answer can be stale between breaches — exactly the
behaviour that motivated worst-case analysis.
"""

from __future__ import annotations

from collections import Counter

from repro.common.params import TrackingParams
from repro.common.validation import require_positive
from repro.network.message import Message
from repro.network.protocol import ContinuousTrackingProtocol, Coordinator, Site

_MSG_BREACH = "topk.breach"
_REQ_COUNTS = "topk.counts"
_MSG_INSTALL = "topk.install"


class _TopKSite(Site):
    """Tracks local drift of watched items against slack budgets."""

    def __init__(self, site_id, network) -> None:
        super().__init__(site_id, network)
        self._counts: Counter[int] = Counter()
        self._watched: dict[int, int] = {}  # item -> slack budget
        self._baseline: dict[int, int] = {}  # item -> count at install
        self._untracked_slack = 0
        self._untracked_baseline: Counter[int] = Counter()

    def bootstrap(self, items: list[int]) -> None:
        self._counts.update(items)

    def observe(self, item: int) -> None:
        self._counts[item] += 1
        if item in self._watched:
            drift = self._counts[item] - self._baseline[item]
            if drift > self._watched[item]:
                self.send(Message(_MSG_BREACH, item))
            return
        drift = self._counts[item] - self._untracked_baseline[item]
        if drift > self._untracked_slack:
            self.send(Message(_MSG_BREACH, item))

    def on_message(self, message: Message) -> None:
        if message.kind == _MSG_INSTALL:
            watched, slack, untracked_slack = message.payload
            self._watched = {int(item): int(slack) for item in watched}
            self._baseline = {
                int(item): self._counts[int(item)] for item in watched
            }
            self._untracked_slack = int(untracked_slack)
            self._untracked_baseline = Counter(self._counts)
            return
        super().on_message(message)

    def on_request(self, message: Message) -> Message:
        if message.kind == _REQ_COUNTS:
            # Reply with the candidates' exact counts plus a margin of local
            # top items beyond the candidate set, so boundary items just
            # outside the cached top set are not undercounted in the merge.
            candidates = message.payload
            top_local = self._counts.most_common(len(candidates) + 8)
            merged = {int(item): self._counts[int(item)] for item in candidates}
            merged.update({item: cnt for item, cnt in top_local})
            return Message(_REQ_COUNTS, merged)
        return super().on_request(message)


class _TopKCoordinator(Coordinator):
    """Caches the top set; resolves on any breach."""

    def __init__(self, network, k_items: int, slack_fraction: float) -> None:
        super().__init__(network)
        self._k_items = k_items
        self._slack_fraction = slack_fraction
        self.top_items: list[tuple[int, int]] = []
        self.resolutions = 0
        self._total_estimate = 0

    def on_message(self, site_id: int, message: Message) -> None:
        if message.kind != _MSG_BREACH:
            raise ValueError(f"unexpected message kind {message.kind!r}")
        self.resolve()

    def resolve(self) -> None:
        """Global poll: recompute the exact top set, re-install slack."""
        self.resolutions += 1
        candidates = [item for item, _cnt in self.top_items]
        replies = self.network.request_all(Message(_REQ_COUNTS, candidates))
        totals: Counter[int] = Counter()
        for reply in replies:
            for item, count in reply.payload.items():
                totals[int(item)] += int(count)
        self.top_items = totals.most_common(self._k_items)
        self._total_estimate = sum(totals.values())
        if len(self.top_items) > self._k_items - 1 and len(totals) > self._k_items:
            boundary_gap = (
                self.top_items[-1][1]
                - totals.most_common(self._k_items + 1)[-1][1]
            )
        else:
            boundary_gap = self.top_items[-1][1] if self.top_items else 1
        slack = max(1, int(boundary_gap * self._slack_fraction))
        watched = [item for item, _cnt in self.top_items]
        self.network.broadcast(Message(_MSG_INSTALL, (watched, slack, slack)))


class TopKHeuristicProtocol(ContinuousTrackingProtocol):
    """Heuristic continuous top-k monitoring (Babcock–Olston flavour).

    No worst-case guarantee: between breaches the cached top set can be
    stale by up to the installed slack. Cheap on stable streams, degrades
    to constant resolution under adversarial rank churn (experiment E13).
    """

    def __init__(
        self,
        params: TrackingParams,
        k_items: int = 10,
        slack_fraction: float = 0.5,
    ) -> None:
        require_positive(k_items, "k_items")
        require_positive(slack_fraction, "slack_fraction")
        self._k_items = k_items
        self._slack_fraction = slack_fraction
        super().__init__(params)

    def _build(self) -> None:
        self._sites = [
            _TopKSite(site_id, self.network)
            for site_id in range(self.params.num_sites)
        ]
        self._coordinator = _TopKCoordinator(
            self.network, self._k_items, self._slack_fraction
        )
        self.network.bind(self._coordinator, self._sites)

    def _site(self, site_id: int) -> Site:
        return self._sites[site_id]

    def _initialize(self, per_site_items: list[list[int]]) -> None:
        for site, items in zip(self._sites, per_site_items):
            site.bootstrap(items)
        self._coordinator.resolve()

    # -- queries ---------------------------------------------------------

    def top_k(self) -> list[tuple[int, int]]:
        """The cached ``(item, count)`` top list (possibly stale)."""
        if self.in_warmup:
            return Counter(self._warmup_counts).most_common(self._k_items)
        return list(self._coordinator.top_items)

    @property
    def resolutions(self) -> int:
        """Number of global resolution polls so far."""
        if self.in_warmup:
            return 0
        return self._coordinator.resolutions
