"""One-shot computation in the classical communication model.

The paper's §1 observes that a *single* computation of the φ-heavy hitters
or a φ-quantile over distributed data costs only ``O(k/ε)`` — continuous
tracking is what adds the ``Θ(log n)`` factor (experiment E12 measures the
gap). These functions perform the one-shot computation and report its cost.
"""

from __future__ import annotations

import bisect
from collections import Counter

from repro.common.validation import require_epsilon, require_phi
from repro.structures.intervals import equi_depth_separators


def _word_cost(num_summaries: int, summary_words: int) -> int:
    """k uplinked summaries of the given size (plus one request word each)."""
    return num_summaries * (summary_words + 1)


def one_shot_quantile(
    per_site_items: list[list[int]], phi: float, epsilon: float
) -> tuple[int, int]:
    """One-shot ε-approximate φ-quantile.

    Every site ships an ``ε/2``-accurate equi-depth summary (``O(1/ε)``
    words); the coordinator merges. Returns ``(answer, words_used)``.
    """
    require_phi(phi)
    require_epsilon(epsilon)
    summaries: list[tuple[int, list[int]]] = []
    words = 0
    total = 0
    for items in per_site_items:
        ordered = sorted(items)
        total += len(ordered)
        bucket = max(1, int(len(ordered) * epsilon / 2))
        separators = equi_depth_separators(ordered, bucket)
        summaries.append((bucket, separators))
        words += len(separators) + 2
    if total == 0:
        raise ValueError("one-shot quantile of an empty input")

    def est_rank(value: int) -> int:
        return sum(
            bucket * bisect.bisect_right(separators, value)
            for bucket, separators in summaries
        )

    target = phi * total
    candidates = sorted({sep for _b, seps in summaries for sep in seps})
    if not candidates:
        # Degenerate: every site too small for a bucket; ship raw minima.
        flattened = sorted(item for items in per_site_items for item in items)
        return flattened[min(len(flattened) - 1, int(phi * total))], words
    answer = min(candidates, key=lambda v: abs(est_rank(v) - target))
    return answer, words


def one_shot_heavy_hitters(
    per_site_items: list[list[int]], phi: float, epsilon: float
) -> tuple[set[int], int]:
    """One-shot ε-approximate φ-heavy hitters.

    Every site ships its local items with frequency ≥ ``ε/2`` of its local
    count (``O(1/ε)`` candidates) plus its local count; the coordinator
    re-collects exact counts for the candidate set only.
    Returns ``(hitters, words_used)``.
    """
    require_phi(phi, epsilon)
    require_epsilon(epsilon)
    counters = [Counter(items) for items in per_site_items]
    totals = [sum(counter.values()) for counter in counters]
    total = sum(totals)
    if total == 0:
        return set(), 0
    words = 0
    candidates: set[int] = set()
    for counter, local_total in zip(counters, totals):
        local = {
            item
            for item, cnt in counter.items()
            if cnt >= epsilon / 2 * max(1, local_total)
        }
        candidates |= local
        words += len(local) + 2
    # Second pass: exact global counts of candidates (k more messages).
    hitters: set[int] = set()
    for item in candidates:
        exact = sum(counter[item] for counter in counters)
        if exact >= (phi - epsilon / 2) * total:
            hitters.add(item)
    words += len(candidates) * len(per_site_items) + len(per_site_items)
    return hitters, words
