"""Distributed counter: track ``|A|`` within a ``(1+ε)`` factor.

The paper's §1 recalls this as the simplest tracked function ``f(A)=|A|``,
solvable with ``O(k/ε · log n)`` communication by having each site report
whenever its local count grows by a ``(1+ε)`` factor [23]. Used here as a
substrate building block and as the simplest scaling sanity check.
"""

from __future__ import annotations

from repro.common.params import TrackingParams
from repro.network.message import Message
from repro.network.protocol import ContinuousTrackingProtocol, Coordinator, Site

_MSG_COUNT = "cnt.report"


class _CounterSite(Site):
    def __init__(self, site_id, network, epsilon: float) -> None:
        super().__init__(site_id, network)
        self._epsilon = epsilon
        self._local = 0
        self._reported = 0

    def bootstrap(self, count: int) -> None:
        self._local = count
        self._reported = count

    def observe(self, item: int) -> None:
        self._local += 1
        if self._local >= max(
            self._reported * (1 + self._epsilon), self._reported + 1
        ):
            self.send(Message(_MSG_COUNT, self._local - self._reported))
            self._reported = self._local


class _CounterCoordinator(Coordinator):
    def __init__(self, network) -> None:
        super().__init__(network)
        self.total_estimate = 0

    def on_message(self, site_id: int, message: Message) -> None:
        self.total_estimate += int(message.payload)


class DistributedCounter(ContinuousTrackingProtocol):
    """Continuously tracks ``|A|`` within a relative error of ``ε``."""

    def _build(self) -> None:
        self._sites = [
            _CounterSite(site_id, self.network, self.params.epsilon)
            for site_id in range(self.params.num_sites)
        ]
        self._coordinator = _CounterCoordinator(self.network)
        self.network.bind(self._coordinator, self._sites)

    def _site(self, site_id: int) -> Site:
        return self._sites[site_id]

    def _initialize(self, per_site_items: list[list[int]]) -> None:
        total = 0
        for site, items in zip(self._sites, per_site_items):
            site.bootstrap(len(items))
            total += len(items)
        self._coordinator.total_estimate = total

    @property
    def estimated_total(self) -> int:
        """Coordinator's view of ``|A|``; within ``(1+ε)`` of the truth."""
        if self.in_warmup:
            return self.items_processed
        return self._coordinator.total_estimate
