"""Periodic polling baseline (the "pull" paradigm the paper's §1 contrasts).

The coordinator polls every site for a local summary every ``period``
arrivals it learns about. Answers between polls are stale: this baseline
demonstrates why the push-based protocols exist — to meet the at-all-times
guarantee you must poll so often that communication explodes.
"""

from __future__ import annotations

import bisect

from repro.common.params import TrackingParams
from repro.common.validation import require_phi, require_positive
from repro.core.localstore import ExactLocalStore
from repro.network.message import Message
from repro.network.protocol import ContinuousTrackingProtocol, Coordinator, Site

_MSG_TICK = "poll.tick"
_REQ_SUMMARY = "poll.summary"


class _PollSite(Site):
    def __init__(self, site_id, network, params: TrackingParams) -> None:
        super().__init__(site_id, network)
        self._params = params
        self._store = ExactLocalStore()

    def bootstrap(self, items: list[int]) -> None:
        for item in items:
            self._store.insert(item)

    def observe(self, item: int) -> None:
        self._store.insert(item)
        # One-word heartbeat so the coordinator can count arrivals; the
        # "poll" paradigm needs some notion of time passing.
        self.send(Message(_MSG_TICK, None))

    def on_request(self, message: Message) -> Message:
        if message.kind == _REQ_SUMMARY:
            bucket = max(1, int(self._store.total * self._params.epsilon / 4))
            count, bucket, separators = self._store.summary(
                1, self._params.universe_size + 1, bucket
            )
            return Message(_REQ_SUMMARY, (count, bucket, separators))
        return super().on_request(message)


class _PollCoordinator(Coordinator):
    def __init__(self, network, num_sites: int, period: int) -> None:
        super().__init__(network)
        self._period = period
        self._ticks = 0
        self.polls = 0
        self._summaries: list[tuple[int, int, list[int]]] = [
            (0, 1, []) for _ in range(num_sites)
        ]

    def on_message(self, site_id: int, message: Message) -> None:
        self._ticks += 1
        if self._ticks % self._period == 0:
            self.poll()

    def poll(self) -> None:
        replies = self.network.request_all(Message(_REQ_SUMMARY))
        self._summaries = [tuple(reply.payload) for reply in replies]
        self.polls += 1

    def estimate_rank(self, item: int) -> int:
        return sum(
            bucket * bisect.bisect_right(separators, item)
            for _count, bucket, separators in self._summaries
        )

    @property
    def estimated_total(self) -> int:
        return sum(count for count, _b, _s in self._summaries)

    def estimate_quantile(self, phi: float) -> int:
        target = phi * self.estimated_total
        candidates = sorted(
            {sep for _c, _b, seps in self._summaries for sep in seps}
        )
        if not candidates:
            return 1
        return min(candidates, key=lambda v: abs(self.estimate_rank(v) - target))


class PeriodicPollProtocol(ContinuousTrackingProtocol):
    """Pull-based tracking: fresh answers only every ``period`` arrivals."""

    def __init__(self, params: TrackingParams, period: int = 1000) -> None:
        require_positive(period, "period")
        self._period = period
        super().__init__(params)

    def _build(self) -> None:
        self._sites = [
            _PollSite(site_id, self.network, self.params)
            for site_id in range(self.params.num_sites)
        ]
        self._coordinator = _PollCoordinator(
            self.network, self.params.num_sites, self._period
        )
        self.network.bind(self._coordinator, self._sites)

    def _site(self, site_id: int) -> Site:
        return self._sites[site_id]

    def _initialize(self, per_site_items: list[list[int]]) -> None:
        for site, items in zip(self._sites, per_site_items):
            site.bootstrap(items)
        self._coordinator.poll()

    # -- queries (stale up to one period) ----------------------------------

    def quantile(self, phi: float) -> int:
        """Approximate φ-quantile as of the last poll."""
        require_phi(phi)
        if self.in_warmup:
            ordered = sorted(
                value
                for value, cnt in self._warmup_counts.items()
                for _ in range(cnt)
            )
            return ordered[min(len(ordered) - 1, int(phi * len(ordered)))]
        return self._coordinator.estimate_quantile(phi)

    def rank(self, item: int) -> int:
        """Estimated count of items ``≤ item`` as of the last poll."""
        if self.in_warmup:
            return sum(
                cnt
                for value, cnt in self._warmup_counts.items()
                if value <= item
            )
        return self._coordinator.estimate_rank(item)

    @property
    def polls(self) -> int:
        if self.in_warmup:
            return 0
        return self._coordinator.polls
