"""Naive baseline: forward every arrival to the coordinator.

Exact answers, communication ``Θ(n)`` words — the strategy the paper's
``O(k/ε · log n)`` protocols are ``n/(k/ε·log n)`` times cheaper than (and
the right choice when ``n`` is small, as the paper notes in §1).
"""

from __future__ import annotations

from repro.common.params import TrackingParams
from repro.common.validation import require_phi
from repro.network.message import Message
from repro.network.protocol import ContinuousTrackingProtocol, Coordinator, Site
from repro.oracle.exact import ExactTracker

_MSG_ITEM = "naive.item"


class _NaiveSite(Site):
    def observe(self, item: int) -> None:
        self.send(Message(_MSG_ITEM, item))


class _NaiveCoordinator(Coordinator):
    def __init__(self, network, universe_size: int) -> None:
        super().__init__(network)
        self.tracker = ExactTracker(universe_size)

    def on_message(self, site_id: int, message: Message) -> None:
        self.tracker.update(int(message.payload))


class NaiveForwardProtocol(ContinuousTrackingProtocol):
    """Every item crosses the network; the coordinator is omniscient."""

    def _build(self) -> None:
        self._sites = [
            _NaiveSite(site_id, self.network)
            for site_id in range(self.params.num_sites)
        ]
        self._coordinator = _NaiveCoordinator(
            self.network, self.params.universe_size
        )
        self.network.bind(self._coordinator, self._sites)

    def _site(self, site_id: int) -> Site:
        return self._sites[site_id]

    def _initialize(self, per_site_items: list[list[int]]) -> None:
        # Warm-up items were already forwarded; replay them into the tracker.
        for items in per_site_items:
            for item in items:
                self._coordinator.tracker.update(item)

    # -- queries (all exact) -----------------------------------------------

    def heavy_hitters(self, phi: float) -> set[int]:
        """Exact φ-heavy hitters."""
        require_phi(phi)
        if self.in_warmup:
            total = max(1, self.items_processed)
            return {
                item
                for item, cnt in self._warmup_counts.items()
                if cnt >= phi * total
            }
        return self._coordinator.tracker.heavy_hitters(phi)

    def quantile(self, phi: float = 0.5) -> int:
        """Exact φ-quantile."""
        require_phi(phi)
        if self.in_warmup:
            ordered = sorted(
                item
                for item, cnt in self._warmup_counts.items()
                for _ in range(cnt)
            )
            return ordered[min(len(ordered) - 1, int(phi * len(ordered)))]
        return self._coordinator.tracker.quantile(phi)

    def rank(self, item: int) -> int:
        """Exact count of items ``≤ item``."""
        if self.in_warmup:
            return sum(
                cnt
                for value, cnt in self._warmup_counts.items()
                if value <= item
            )
        return self._coordinator.tracker.rank_leq(item)
