"""The prior-work comparator: Cormode–Garofalakis–Muthukrishnan–Rastogi 2005.

"Holistic aggregates in a networked world" [7] tracks all quantiles by
having each site ship a fresh ``ε/2``-accurate local quantile summary (size
``Θ(1/ε)`` words) whenever its local count has grown by a ``(1 + ε/2)``
factor since the last shipment. Per site that is ``O(log n / ε)`` shipments
of ``O(1/ε)`` words: total ``O(k/ε² · log n)`` — exactly the bound the
paper improves by ``Θ(1/ε)`` (experiment E7 measures the separation).

This is a faithful re-implementation of the protocol's structure and cost;
the original system's engineering details (prediction models etc.) affect
constants only.
"""

from __future__ import annotations

import bisect

from repro.common.params import TrackingParams
from repro.common.validation import require_phi
from repro.core.localstore import ExactLocalStore
from repro.network.message import Message
from repro.network.protocol import ContinuousTrackingProtocol, Coordinator, Site

_MSG_SUMMARY = "cgmr.summary"
_SUMMARY_ERROR_FRACTION = 4  # local summary error: |Aj| * eps / 4
_STALENESS_FACTOR = 4  # ship when local count grew by (1 + eps/4)


class _CGMRSite(Site):
    """Ships equi-depth local summaries on geometric count growth."""

    def __init__(self, site_id, network, params: TrackingParams) -> None:
        super().__init__(site_id, network)
        self._params = params
        self._store = ExactLocalStore()
        self._last_shipped_count = 0

    def bootstrap(self, items: list[int]) -> None:
        for item in items:
            self._store.insert(item)
        self.ship()

    def ship(self) -> None:
        """Send a fresh ε/4-accurate summary of the local multiset."""
        total = self._store.total
        self._last_shipped_count = total
        if total == 0:
            self.send(Message(_MSG_SUMMARY, (0, 1, [])))
            return
        bucket = max(
            1, int(total * self._params.epsilon / _SUMMARY_ERROR_FRACTION)
        )
        count, bucket, separators = self._store.summary(
            1, self._params.universe_size + 1, bucket
        )
        self.send(Message(_MSG_SUMMARY, (count, bucket, separators)))

    def observe(self, item: int) -> None:
        self._store.insert(item)
        threshold = self._last_shipped_count * (
            1 + self._params.epsilon / _STALENESS_FACTOR
        )
        if self._store.total >= max(threshold, self._last_shipped_count + 1):
            self.ship()


class _CGMRCoordinator(Coordinator):
    """Merges the latest per-site summaries to answer rank queries."""

    def __init__(self, network, num_sites: int) -> None:
        super().__init__(network)
        # Per site: (count, bucket, sorted separators).
        self._summaries: list[tuple[int, int, list[int]]] = [
            (0, 1, []) for _ in range(num_sites)
        ]
        self.shipments = 0

    def on_message(self, site_id: int, message: Message) -> None:
        count, bucket, separators = message.payload
        self._summaries[site_id] = (int(count), int(bucket), list(separators))
        self.shipments += 1

    def estimate_rank(self, item: int) -> int:
        return sum(
            bucket * bisect.bisect_right(separators, item)
            for _count, bucket, separators in self._summaries
        )

    @property
    def estimated_total(self) -> int:
        return sum(count for count, _b, _s in self._summaries)

    def estimate_quantile(self, phi: float) -> int:
        target = phi * self.estimated_total
        candidates = sorted(
            {sep for _c, _b, separators in self._summaries for sep in separators}
        )
        if not candidates:
            return 1
        best = min(candidates, key=lambda v: abs(self.estimate_rank(v) - target))
        return best


class CGMR05Protocol(ContinuousTrackingProtocol):
    """All-quantile tracking at the prior-work cost ``O(k/ε² · log n)``."""

    def _build(self) -> None:
        self._sites = [
            _CGMRSite(site_id, self.network, self.params)
            for site_id in range(self.params.num_sites)
        ]
        self._coordinator = _CGMRCoordinator(
            self.network, self.params.num_sites
        )
        self.network.bind(self._coordinator, self._sites)

    def _site(self, site_id: int) -> Site:
        return self._sites[site_id]

    def _initialize(self, per_site_items: list[list[int]]) -> None:
        for site, items in zip(self._sites, per_site_items):
            site.bootstrap(items)

    # -- queries -------------------------------------------------------------

    def rank(self, item: int) -> int:
        """Estimated count of items ``≤ item`` (error ``≤ ε|A|``)."""
        if self.in_warmup:
            return sum(
                cnt
                for value, cnt in self._warmup_counts.items()
                if value <= item
            )
        return self._coordinator.estimate_rank(item)

    def quantile(self, phi: float) -> int:
        """An approximate φ-quantile from the merged summaries."""
        require_phi(phi)
        if self.in_warmup:
            ordered = sorted(
                value
                for value, cnt in self._warmup_counts.items()
                for _ in range(cnt)
            )
            return ordered[min(len(ordered) - 1, int(phi * len(ordered)))]
        return self._coordinator.estimate_quantile(phi)

    @property
    def estimated_total(self) -> int:
        if self.in_warmup:
            return self.items_processed
        return self._coordinator.estimated_total

    @property
    def shipments(self) -> int:
        """Number of summary shipments (each ``Θ(1/ε)`` words)."""
        if self.in_warmup:
            return 0
        return self._coordinator.shipments
