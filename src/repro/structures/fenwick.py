"""Fenwick (binary indexed) tree over the integer universe ``{1..u}``.

This is the exact rank oracle behind :mod:`repro.oracle`: it supports
``O(log u)`` point updates, prefix sums, and rank-select queries, which is
what makes auditing a protocol's answers at *every* checkpoint affordable
even on long streams.
"""

from __future__ import annotations

from repro.common.validation import require_positive, require_universe


class FenwickTree:
    """Multiset over ``{1..size}`` with logarithmic rank/select.

    The tree stores item multiplicities; ``prefix_sum(x)`` returns how many
    stored items are ``≤ x`` and ``select(r)`` inverts that.
    """

    def __init__(self, size: int) -> None:
        require_positive(size, "size")
        self._size = size
        self._tree = [0] * (size + 1)
        self._total = 0

    @property
    def size(self) -> int:
        """The universe size ``u``."""
        return self._size

    @property
    def total(self) -> int:
        """Total number of stored items (with multiplicity)."""
        return self._total

    def __len__(self) -> int:
        return self._total

    def add(self, item: int, count: int = 1) -> None:
        """Add ``count`` occurrences of ``item`` (negative removes)."""
        require_universe(item, self._size)
        if count == 0:
            return
        self._total += count
        index = item
        while index <= self._size:
            self._tree[index] += count
            index += index & (-index)

    def remove(self, item: int, count: int = 1) -> None:
        """Remove ``count`` occurrences of ``item``."""
        self.add(item, -count)

    def prefix_sum(self, item: int) -> int:
        """Number of stored items ``≤ item`` (0 when ``item < 1``)."""
        if item < 1:
            return 0
        index = min(item, self._size)
        acc = 0
        while index > 0:
            acc += self._tree[index]
            index -= index & (-index)
        return acc

    def count(self, item: int) -> int:
        """Multiplicity of ``item``."""
        return self.prefix_sum(item) - self.prefix_sum(item - 1)

    def range_sum(self, lo: int, hi: int) -> int:
        """Number of stored items in the inclusive range ``[lo, hi]``."""
        if hi < lo:
            return 0
        return self.prefix_sum(hi) - self.prefix_sum(lo - 1)

    def rank(self, item: int) -> int:
        """Number of stored items strictly smaller than ``item``."""
        return self.prefix_sum(item - 1)

    def select(self, target_rank: int) -> int:
        """Smallest item ``x`` with ``prefix_sum(x) ≥ target_rank``.

        ``target_rank`` is 1-based: ``select(1)`` is the minimum stored item.
        Raises ``IndexError`` when the multiset holds fewer items.
        """
        if not 1 <= target_rank <= self._total:
            raise IndexError(
                f"rank {target_rank} out of range for multiset of size "
                f"{self._total}"
            )
        position = 0
        remaining = target_rank
        # Descend power-of-two jumps; classic Fenwick binary search.
        bit = 1
        while (bit << 1) <= self._size:
            bit <<= 1
        while bit > 0:
            nxt = position + bit
            if nxt <= self._size and self._tree[nxt] < remaining:
                position = nxt
                remaining -= self._tree[nxt]
            bit >>= 1
        return position + 1

    def quantile(self, phi: float) -> int:
        """The φ-quantile of the stored multiset (φ in [0, 1]).

        Returns the item of 1-based rank ``max(1, ceil(φ·total))``, i.e. an
        element with at most ``φ·total`` items strictly below it and at most
        ``(1-φ)·total`` strictly above — the paper's definition.
        """
        if self._total == 0:
            raise IndexError("quantile of an empty multiset")
        target = max(1, min(self._total, int(-(-phi * self._total // 1))))
        return self.select(target)
