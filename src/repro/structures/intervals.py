"""Equi-depth interval partitions of the universe.

The single-quantile protocol (§3.1) maintains at the coordinator a dynamic
set of disjoint intervals over ``U``, each holding between ``εm/8`` and
``εm/2`` items; this module provides the partition structure plus the
helper that extracts equi-depth separators from sorted local data.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Iterable, Sequence


def equi_depth_separators(sorted_values: Sequence[int], bucket_size: int) -> list[int]:
    """Separator items splitting ``sorted_values`` into ≈``bucket_size`` chunks.

    Returns every ``bucket_size``-th element (the *last* element of each full
    bucket). With ``b = bucket_size`` the rank of any value can be recovered
    from the separators with error at most ``b``. Empty input or a bucket
    size larger than the data yields an empty list.
    """
    if bucket_size < 1:
        raise ValueError(f"bucket_size must be >= 1, got {bucket_size!r}")
    return [
        sorted_values[index]
        for index in range(bucket_size - 1, len(sorted_values), bucket_size)
    ]


@dataclass
class Interval:
    """A half-open value range ``[lo, hi)`` with an item count estimate."""

    lo: int
    hi: int
    count: int = 0

    def __contains__(self, item: int) -> bool:
        return self.lo <= item < self.hi

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Interval([{self.lo}, {self.hi}), count={self.count})"


@dataclass
class IntervalPartition:
    """A sorted set of disjoint intervals covering ``[1, universe_size+1)``.

    Intervals are stored in increasing value order; lookup by item is a
    binary search over the interval boundaries. Counts attached to each
    interval are maintained by the caller (the coordinator).
    """

    universe_size: int
    _bounds: list[int] = field(default_factory=list)
    _counts: list[int] = field(default_factory=list)

    @classmethod
    def from_separators(
        cls, separators: Iterable[int], universe_size: int
    ) -> "IntervalPartition":
        """Build a partition whose internal boundaries sit *after* each separator.

        A separator ``s`` closes the interval ``[prev, s+1)``: separators are
        items, and an interval is the set of values up to and including its
        separator.
        """
        bounds = [1]
        for sep in sorted(set(separators)):
            boundary = sep + 1
            if boundary <= bounds[-1]:
                continue
            if boundary > universe_size:
                break
            bounds.append(boundary)
        bounds.append(universe_size + 1)
        part = cls(universe_size=universe_size)
        part._bounds = bounds
        part._counts = [0] * (len(bounds) - 1)
        return part

    def __len__(self) -> int:
        return len(self._counts)

    def __iter__(self):
        for index in range(len(self._counts)):
            yield self.interval(index)

    def interval(self, index: int) -> Interval:
        """The ``index``-th interval (in increasing value order)."""
        return Interval(
            lo=self._bounds[index],
            hi=self._bounds[index + 1],
            count=self._counts[index],
        )

    def index_of(self, item: int) -> int:
        """Index of the interval containing ``item``."""
        if not 1 <= item <= self.universe_size:
            raise ValueError(
                f"item {item} outside universe [1, {self.universe_size}]"
            )
        return bisect.bisect_right(self._bounds, item) - 1

    def boundaries(self) -> list[int]:
        """All interval boundaries, including the sentinels at both ends."""
        return list(self._bounds)

    def separators(self) -> list[int]:
        """Internal separator items (last value of each non-final interval)."""
        return [bound - 1 for bound in self._bounds[1:-1]]

    def get_count(self, index: int) -> int:
        """Current count estimate of interval ``index``."""
        return self._counts[index]

    def add_count(self, index: int, delta: int) -> int:
        """Increase interval ``index``'s count estimate; returns new value."""
        self._counts[index] += delta
        return self._counts[index]

    def set_count(self, index: int, value: int) -> None:
        """Overwrite interval ``index``'s count estimate."""
        self._counts[index] = value

    def total_count(self) -> int:
        """Sum of all interval count estimates."""
        return sum(self._counts)

    def split(self, index: int, separator: int, left_count: int, right_count: int) -> None:
        """Split interval ``index`` at ``separator`` (which joins the left part).

        The left child becomes ``[lo, separator+1)`` with ``left_count`` and
        the right child ``[separator+1, hi)`` with ``right_count``.
        """
        interval = self.interval(index)
        boundary = separator + 1
        if not interval.lo < boundary < interval.hi:
            raise ValueError(
                f"separator {separator} does not strictly split {interval}"
            )
        self._bounds.insert(index + 1, boundary)
        self._counts[index] = left_count
        self._counts.insert(index + 1, right_count)

    def prefix_count(self, index: int) -> int:
        """Total estimated count of intervals strictly before ``index``."""
        return sum(self._counts[:index])
