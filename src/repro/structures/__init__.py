"""Order-statistics building blocks: Fenwick trees and equi-depth partitions."""

from repro.structures.fenwick import FenwickTree
from repro.structures.intervals import IntervalPartition, equi_depth_separators

__all__ = ["FenwickTree", "IntervalPartition", "equi_depth_separators"]
