"""Command-line entry point: ``python -m repro [list|all|E<k>...]``.

Runs any of the DESIGN.md experiments and prints its claim-vs-measured
table. ``--full`` switches the larger (slower) parameter grids on.
"""

from __future__ import annotations

import argparse
import sys

from repro.harness.experiment import run_experiment
from repro.harness.registry import experiment_ids


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction experiments for 'Optimal Tracking of Distributed "
            "Heavy Hitters and Quantiles' (Yi & Zhang, PODS 2009)"
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        default=["list"],
        help="experiment ids (e.g. E1 E7), 'all', or 'list'",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="run the full (slow) parameter grids instead of quick ones",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    requested = [token.upper() for token in args.experiments]
    if requested == ["LIST"]:
        print("available experiments (see DESIGN.md for the index):")
        for experiment_id in experiment_ids():
            print(f"  {experiment_id}")
        return 0
    if requested == ["ALL"]:
        requested = experiment_ids()
    for experiment_id in requested:
        result = run_experiment(experiment_id, quick=not args.full)
        print(result.render())
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
