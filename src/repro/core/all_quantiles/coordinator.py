"""Coordinator-side state of the §4 all-quantiles protocol.

Owns the Figure-1 tree. Partial-sum updates arrive as ``(node, amount)``
pushes; the coordinator reacts by (a) starting a new round when ``|A|``
doubles, (b) partially rebuilding the highest node whose splitting-element
invariant ``su/4 ≤ sv ≤ 3su/4`` broke, and (c) splitting any leaf that
outgrew ``(ε/2 − θ)m``. Every (re)build polls the sites for local
equi-depth summaries of the affected range only, keeping each rebuild's
cost proportional to the subtree's share of the stream.
"""

from __future__ import annotations

import bisect

from repro.common.errors import ProtocolError
from repro.common.params import TrackingParams
from repro.core.all_quantiles.messages import (
    MSG_COUNT,
    MSG_INSTALL,
    REQ_RANGE_SUMMARY,
    REQ_SUBTREE_COUNTS,
)
from repro.core.all_quantiles.tree import QuantileTree, TreeNode, height_bound
from repro.core.quantile.coordinator import merge_rank_estimator
from repro.network.message import Message
from repro.network.protocol import Coordinator
from repro.network.runtime import Network

_SUMMARY_PARTS = 32


class AllQuantilesCoordinator(Coordinator):
    """Maintains the quantile tree and its three repair rules."""

    def __init__(
        self,
        network: Network,
        params: TrackingParams,
        theta_scale: float = 1.0,
    ) -> None:
        super().__init__(network)
        self._params = params
        self._height_cap = height_bound(params.epsilon)
        # theta = eps/(2h) per the paper; theta_scale is ablation A3's knob
        # (larger theta = lazier count updates = cheaper but less accurate).
        self._theta = theta_scale * params.epsilon / (2 * self._height_cap)
        self.tree = QuantileTree(universe_size=params.universe_size)
        self.round_base = 0
        self.rounds_completed = 0
        self.partial_rebuilds = 0
        self.leaf_splits = 0

    @property
    def theta(self) -> float:
        """Per-node count error budget ``θ = ε/(2h)`` (fraction of ``m``)."""
        return self._theta

    def _leaf_cap(self) -> int:
        """Build-time leaf size target ``3εm/8``."""
        return max(1, int(3 * self._params.epsilon * self.round_base / 8))

    def _leaf_split_threshold(self) -> float:
        return (self._params.epsilon / 2 - self._theta) * self.round_base

    # -- building ---------------------------------------------------------

    def full_rebuild(self) -> None:
        """Start a new round: rebuild the whole tree from fresh summaries."""
        self._rebuild(None)
        self.rounds_completed += 1

    def _rebuild(self, node_id: int | None) -> None:
        """(Re)build the subtree at ``node_id`` (``None`` = the root)."""
        if node_id is None:
            lo, hi, parent_id, replaced_id = 1, self._params.universe_size + 1, -1, -1
        else:
            old = self.tree.node(node_id)
            lo, hi, parent_id, replaced_id = old.lo, old.hi, old.parent, node_id
        # Per-site bucket eps*m/(32k): total rank error eps*m/32, accurate at
        # every depth of the subtree (the paper's eps' = eps*m/|A∩Iu| init).
        bucket = max(
            1,
            int(
                self._params.epsilon
                * self.round_base
                / (_SUMMARY_PARTS * self._params.k)
            ),
        )
        replies = self.network.request_all(
            Message(REQ_RANGE_SUMMARY, (lo, hi, bucket))
        )
        summaries = [tuple(reply.payload) for reply in replies]
        total, candidates, est_rank = merge_rank_estimator(summaries)
        if node_id is None:
            if total <= 0:
                raise ProtocolError("full rebuild with no items at any site")
            self.round_base = total
        # Remove the old subtree before allocating the replacement (on a
        # full rebuild that is the entire previous tree).
        if replaced_id >= 0:
            self.tree.remove_subtree(replaced_id)
        elif self.tree.root_id >= 0:
            self.tree.remove_subtree(self.tree.root_id)
        spec: list[tuple[int, int, int, int, int]] = []
        new_root_id = self._build_range(
            lo, hi, parent_id, candidates, est_rank, spec, depth=0
        )
        if (
            replaced_id >= 0
            and len(spec) == 1
            and total >= self._leaf_cap()
        ):
            # We were asked to split/repair but found no usable separator
            # (e.g. a single-value interval): suppress until the count doubles.
            self.tree.node(new_root_id).suppress_until = 2 * max(1, total)
        if parent_id < 0:
            self.tree.root_id = new_root_id
        else:
            parent = self.tree.node(parent_id)
            if parent.lo == lo:
                parent.left = new_root_id
            else:
                parent.right = new_root_id
        self.network.broadcast(
            Message(MSG_INSTALL, (self.round_base, replaced_id, parent_id, spec))
        )
        self._collect_exact_counts(new_root_id)
        if node_id is not None:
            self.partial_rebuilds += 1

    def _build_range(
        self,
        lo: int,
        hi: int,
        parent_id: int,
        candidates: list[int],
        est_rank,
        spec: list[tuple[int, int, int, int, int]],
        depth: int,
    ) -> int:
        """Recursively build ``[lo, hi)``; appends spec rows in preorder."""
        node_id = self.tree.fresh_id()
        row_index = len(spec)
        spec.append((node_id, lo, hi, -1, -1))  # patched below if internal
        count_est = est_rank(hi - 1) - est_rank(lo - 1)
        separator = None
        skewed = False
        if (
            count_est > self._leaf_cap()
            and hi - lo >= 2
            and depth < 3 * self._height_cap
        ):
            separator, skewed = self._choose_separator(
                lo, hi, candidates, est_rank, count_est
            )
        if separator is None:
            self.tree.add_node(
                TreeNode(node_id=node_id, lo=lo, hi=hi, parent=parent_id)
            )
            return node_id
        left_id = self._build_range(
            lo, separator + 1, node_id, candidates, est_rank, spec, depth + 1
        )
        right_id = self._build_range(
            separator + 1, hi, node_id, candidates, est_rank, spec, depth + 1
        )
        self.tree.add_node(
            TreeNode(
                node_id=node_id,
                lo=lo,
                hi=hi,
                parent=parent_id,
                left=left_id,
                right=right_id,
                skewed=skewed,
            )
        )
        spec[row_index] = (node_id, lo, hi, left_id, right_id)
        return node_id

    def _choose_separator(
        self, lo: int, hi: int, candidates: list[int], est_rank, count_est: int
    ) -> tuple[int | None, bool]:
        """Pick a splitting element for ``[lo, hi)``.

        Prefers a balanced split (both sides non-empty, near the median —
        the paper's case, which assumes distinct items). When ties
        concentrate all mass on one side of every candidate, falls back to a
        *skewed* split that shrinks the mass-carrying side's value range, so
        repeated mass (a single hot value) still isolates into a narrow
        leaf. Returns ``(separator, skewed)``; ``(None, False)`` means keep
        this range as a leaf.
        """
        left_pos = bisect.bisect_left(candidates, lo)
        right_pos = bisect.bisect_right(candidates, hi - 1)
        nearby = candidates[left_pos:right_pos]
        boundaries = {value for value in nearby if value <= hi - 2}
        boundaries.update(
            value - 1 for value in nearby if lo <= value - 1 <= hi - 2
        )
        if not boundaries:
            return None, False
        base = est_rank(lo - 1)
        half = base + count_est / 2
        balanced = [
            value
            for value in boundaries
            if 0 < est_rank(value) - base < count_est
        ]
        if balanced:
            best = min(balanced, key=lambda v: abs(est_rank(v) - half))
            ratio = (est_rank(best) - base) / count_est
            # A single hot value can make every achievable split lopsided;
            # the balance invariant can then never hold for this node, so
            # exempt it (skewed) instead of rebuilding forever. The paper
            # avoids this case by assuming distinct items.
            return best, not 0.3 <= ratio <= 0.7

        def mass_side_width(value: int) -> int:
            left_mass = est_rank(value) - base
            if left_mass > 0:  # everything at or below the boundary
                return value + 1 - lo
            return hi - (value + 1)

        best = min(boundaries, key=mass_side_width)
        if mass_side_width(best) >= hi - lo:
            return None, False
        return best, True

    def _collect_exact_counts(self, subtree_root_id: int) -> None:
        """Poll every site for exact per-node counts of the new subtree."""
        replies = self.network.request_all(
            Message(REQ_SUBTREE_COUNTS, subtree_root_id)
        )
        order = self.tree.preorder(subtree_root_id)
        totals = [0] * len(order)
        for reply in replies:
            counts = reply.payload
            if len(counts) != len(order):
                raise ProtocolError("subtree count reply shape mismatch")
            for index, count in enumerate(counts):
                totals[index] += int(count)
        for node_id, count in zip(order, totals):
            self.tree.node(node_id).su = count
        if subtree_root_id == self.tree.root_id:
            self.round_base = self.tree.root.su

    # -- repair rules on every update ---------------------------------------

    def on_message(self, site_id: int, message: Message) -> None:
        if message.kind != MSG_COUNT:
            raise ProtocolError(f"unexpected message kind {message.kind!r}")
        node_id, amount = message.payload
        node = self.tree.node(int(node_id))
        node.su += int(amount)
        if self.tree.root.su >= 2 * self.round_base:
            self.full_rebuild()
            return
        violated = self._highest_violation(int(node_id))
        if violated is not None:
            self._rebuild(violated)
            return
        if (
            node.is_leaf
            and node.su > self._leaf_split_threshold()
            and node.su >= node.suppress_until
        ):
            self.leaf_splits += 1
            self._rebuild(node.node_id)

    def _highest_violation(self, node_id: int) -> int | None:
        """Highest ancestor whose splitting-element invariant (6) broke."""
        floor = max(4, self._leaf_cap())
        for ancestor_id in self.tree.path_to(node_id):
            ancestor = self.tree.node(ancestor_id)
            if ancestor.is_leaf or ancestor.skewed or ancestor.su < floor:
                continue
            if ancestor.su < ancestor.suppress_until:
                continue
            for child_id in (ancestor.left, ancestor.right):
                child = self.tree.node(child_id)
                if not ancestor.su / 4 <= child.su <= 3 * ancestor.su / 4:
                    return ancestor_id
        return None
