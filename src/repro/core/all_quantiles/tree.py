"""The Figure-1 binary tree maintained by the all-quantiles coordinator.

Each node ``u`` covers an interval ``Iu`` of the universe and carries
``su``, an underestimate of ``|A ∩ Iu|`` with absolute error at most
``θm`` where ``θ = ε/(2h)`` and ``h`` bounds the height. Internal nodes
store a splitting element (an approximate median of their interval); the
Θ(1/ε) leaves each cover at most ``εm/2`` items.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.common.errors import ProtocolError


def height_bound(epsilon: float) -> int:
    """The height cap ``h = Θ(log 1/ε)`` used to set ``θ = ε/(2h)``."""
    return max(8, math.ceil(math.log2(1 / epsilon)) + 3)


@dataclass
class TreeNode:
    """One node of the quantile tree: interval ``[lo, hi)`` plus count ``su``."""

    node_id: int
    lo: int
    hi: int
    parent: int = -1
    left: int = -1
    right: int = -1
    su: int = 0
    # Node ids below this value are suppressed from re-splitting (set when a
    # rebuild could not find a separator, e.g. a single-value interval).
    suppress_until: int = 0
    # True when this node was split without a balanced separator (ties /
    # single-value mass): the splitting-element invariant does not apply.
    skewed: bool = False

    @property
    def is_leaf(self) -> bool:
        return self.left < 0

    def __contains__(self, item: int) -> bool:
        return self.lo <= item < self.hi


@dataclass
class QuantileTree:
    """Coordinator-side tree: id-addressed nodes plus traversal helpers."""

    universe_size: int
    nodes: dict[int, TreeNode] = field(default_factory=dict)
    root_id: int = -1
    _next_id: int = 0

    def fresh_id(self) -> int:
        """Allocate a new node id (never reused)."""
        node_id = self._next_id
        self._next_id += 1
        return node_id

    def node(self, node_id: int) -> TreeNode:
        try:
            return self.nodes[node_id]
        except KeyError:
            raise ProtocolError(f"unknown tree node {node_id}") from None

    @property
    def root(self) -> TreeNode:
        return self.node(self.root_id)

    def add_node(self, node: TreeNode) -> None:
        self.nodes[node.node_id] = node

    def remove_subtree(self, node_id: int) -> list[int]:
        """Delete ``node_id`` and all descendants; returns removed ids."""
        removed: list[int] = []
        stack = [node_id]
        while stack:
            current = stack.pop()
            node = self.nodes.pop(current, None)
            if node is None:
                continue
            removed.append(current)
            if node.left >= 0:
                stack.append(node.left)
            if node.right >= 0:
                stack.append(node.right)
        return removed

    def path_to(self, node_id: int) -> list[int]:
        """Node ids from the root down to ``node_id`` inclusive."""
        path = [node_id]
        current = self.node(node_id)
        while current.parent >= 0:
            path.append(current.parent)
            current = self.node(current.parent)
        if path[-1] != self.root_id:
            raise ProtocolError(f"node {node_id} detached from the root")
        return path[::-1]

    def leaf_for(self, item: int) -> TreeNode:
        """The leaf whose interval contains ``item``."""
        node = self.root
        while not node.is_leaf:
            left = self.node(node.left)
            node = left if item < left.hi else self.node(node.right)
        if item not in node:
            raise ProtocolError(f"item {item} missed its leaf")
        return node

    def preorder(self, node_id: int | None = None) -> list[int]:
        """Preorder node ids of the subtree at ``node_id`` (default: root)."""
        start = self.root_id if node_id is None else node_id
        order: list[int] = []
        stack = [start]
        while stack:
            current = stack.pop()
            if current < 0 or current not in self.nodes:
                continue
            order.append(current)
            node = self.nodes[current]
            stack.append(node.right)
            stack.append(node.left)
        return order

    def leaves(self) -> list[TreeNode]:
        """All leaves, left to right."""
        return [
            self.nodes[node_id]
            for node_id in self.preorder()
            if self.nodes[node_id].is_leaf
        ]

    def height(self) -> int:
        """Maximum root-to-leaf edge count."""
        def depth(node_id: int) -> int:
            node = self.node(node_id)
            if node.is_leaf:
                return 0
            return 1 + max(depth(node.left), depth(node.right))

        if self.root_id < 0:
            return 0
        return depth(self.root_id)

    # -- queries ---------------------------------------------------------

    def estimate_rank(self, item: int) -> int:
        """Estimated count of items ``≤ item`` (error ``≤ ε·m``).

        Sums the left-sibling counts along the root-to-leaf path, plus half
        the destination leaf's count to centre the within-leaf uncertainty.
        """
        if item < 1:
            return 0
        if item >= self.universe_size:
            return self.root.su
        acc = 0
        node = self.root
        while not node.is_leaf:
            left = self.node(node.left)
            if item < left.hi:
                node = left
            else:
                acc += left.su
                node = self.node(node.right)
        if item >= node.hi - 1:
            return acc + node.su
        return acc + node.su // 2

    def estimate_quantile(self, phi: float) -> int:
        """A value whose estimated rank is ``φ`` of the total.

        Descends to the leaf containing the target rank, then linearly
        interpolates within the leaf's value range — any value of the leaf
        satisfies the ε rank guarantee (leaves hold ≤ ``εm/2`` items), and
        interpolation avoids systematically answering the leaf's extreme.
        """
        if self.root.su <= 0:
            raise IndexError("quantile of an empty tree")
        target = phi * self.root.su
        node = self.root
        acc = 0.0
        while not node.is_leaf:
            left = self.node(node.left)
            if target <= acc + left.su:
                node = left
            else:
                acc += left.su
                node = self.node(node.right)
        if node.su <= 0:
            value = node.lo
        else:
            fraction = min(1.0, max(0.0, (target - acc) / node.su))
            value = node.lo + int(fraction * (node.hi - 1 - node.lo))
        return min(max(1, value), self.universe_size)

    # -- structural audits (used by tests and experiment E8) ------------------

    def check_structure(self) -> None:
        """Raise ProtocolError unless intervals tile correctly."""
        for node in self.nodes.values():
            if node.is_leaf:
                continue
            left = self.node(node.left)
            right = self.node(node.right)
            if (left.lo, right.hi) != (node.lo, node.hi) or left.hi != right.lo:
                raise ProtocolError(
                    f"children of node {node.node_id} do not tile its interval"
                )
