"""Public facade of the §4 all-quantiles tracking protocol (Theorem 4.1).

Usage::

    from repro import AllQuantilesProtocol, TrackingParams

    protocol = AllQuantilesProtocol(TrackingParams(num_sites=8, epsilon=0.05))
    for site_id, item in stream:
        protocol.process(site_id, item)
    p99 = protocol.quantile(0.99)
    r = protocol.rank(123456)

Guarantee: at all times, ``rank(x)`` is within ``ε|A|`` of the true count
of items ``≤ x``, simultaneously for every ``x`` — equivalently, every
φ-quantile is available with error ``ε``.
"""

from __future__ import annotations

from repro.common.params import TrackingParams
from repro.common.validation import require_phi, require_universe
from repro.core.all_quantiles.coordinator import AllQuantilesCoordinator
from repro.core.all_quantiles.site import AllQuantilesSite
from repro.core.all_quantiles.tree import QuantileTree
from repro.network.protocol import ContinuousTrackingProtocol, Site


class AllQuantilesProtocol(ContinuousTrackingProtocol):
    """Continuous all-quantile tracking, cost ``O(k/ε · log n · log²(1/ε))``."""

    def __init__(
        self,
        params: TrackingParams,
        use_sketch_sites: bool = False,
        theta_scale: float = 1.0,
    ) -> None:
        """Create the protocol.

        Args:
            params: shared tracking parameters (``k``, ``ε``, universe).
            use_sketch_sites: back each site with a Greenwald–Khanna sketch
                (§4's small-space remark) instead of an exact multiset.
            theta_scale: multiplier on the paper's ``θ = ε/(2h)`` count-
                update resolution (ablation A3).
        """
        self._use_sketch_sites = use_sketch_sites
        self._theta_scale = theta_scale
        super().__init__(params)

    def _build(self) -> None:
        self._sites = [
            AllQuantilesSite(
                site_id,
                self.network,
                self.params,
                use_sketch=self._use_sketch_sites,
                theta_scale=self._theta_scale,
            )
            for site_id in range(self.params.num_sites)
        ]
        self._coordinator = AllQuantilesCoordinator(
            self.network, self.params, theta_scale=self._theta_scale
        )
        self.network.bind(self._coordinator, self._sites)

    def _site(self, site_id: int) -> Site:
        return self._sites[site_id]

    def _initialize(self, per_site_items: list[list[int]]) -> None:
        for site, items in zip(self._sites, per_site_items):
            site.bootstrap(items)
        self._coordinator.full_rebuild()

    # -- queries -----------------------------------------------------------

    def rank(self, item: int) -> int:
        """Estimated count of stream items ``≤ item`` (error ``≤ ε|A|``)."""
        require_universe(item, self.params.universe_size)
        if self.in_warmup:
            return sum(
                cnt for value, cnt in self._warmup_counts.items() if value <= item
            )
        return self._coordinator.tree.estimate_rank(item)

    def quantile(self, phi: float) -> int:
        """A value whose true rank is within ``ε|A|`` of ``φ|A|``."""
        require_phi(phi)
        if self.in_warmup:
            ordered = sorted(
                value
                for value, cnt in self._warmup_counts.items()
                for _ in range(cnt)
            )
            if not ordered:
                raise IndexError("quantile queried before any arrival")
            return ordered[min(len(ordered) - 1, int(phi * len(ordered)))]
        return self._coordinator.tree.estimate_quantile(phi)

    def heavy_hitters(self, phi: float) -> set[int]:
        """Approximate φ-heavy hitters derived from ranks ([7]'s observation).

        An all-quantile structure with rank error ``ε|A|`` yields
        ``2ε``-approximate heavy hitters: an item ``x`` is reported when its
        estimated rank jump ``rank(x) − rank(x−1)`` clears ``(φ − ε)|A|``.
        Candidates come from an ``ε/2`` quantile grid plus all single-value
        leaves (where a heavy item eventually isolates).
        """
        require_phi(phi)
        total = max(1, self.estimated_total)
        cutoff = (phi - self.params.epsilon) * total
        if self.in_warmup:
            return {
                value
                for value, cnt in self._warmup_counts.items()
                if cnt >= cutoff
            }
        tree = self._coordinator.tree
        candidates: set[int] = set()
        steps = int(2 / self.params.epsilon) + 1
        for index in range(steps + 1):
            candidates.add(tree.estimate_quantile(min(1.0, index / steps)))
        for leaf in tree.leaves():
            if leaf.hi - leaf.lo == 1:
                candidates.add(leaf.lo)
        hitters: set[int] = set()
        for value in candidates:
            jump = tree.estimate_rank(value) - tree.estimate_rank(value - 1)
            if jump >= cutoff:
                hitters.add(value)
        return hitters

    @property
    def estimated_total(self) -> int:
        """The coordinator's estimate of ``|A|`` (the root's count)."""
        if self.in_warmup:
            return self.items_processed
        return self._coordinator.tree.root.su

    @property
    def tree(self) -> QuantileTree:
        """The coordinator's live tree (read-only access for audits/E8)."""
        return self._coordinator.tree

    @property
    def rounds_completed(self) -> int:
        if self.in_warmup:
            return 0
        return self._coordinator.rounds_completed

    @property
    def partial_rebuilds(self) -> int:
        if self.in_warmup:
            return 0
        return self._coordinator.partial_rebuilds

    @property
    def leaf_splits(self) -> int:
        if self.in_warmup:
            return 0
        return self._coordinator.leaf_splits
