"""Message kinds of the §4 all-quantiles protocol."""

# site -> coordinator pushes
MSG_COUNT = "aq.count"  # (node_id, amount): node-interval counter update

# coordinator -> site pushes
MSG_INSTALL = "aq.install"
# payload: (round_base, replaced_id, parent_id, spec) where spec is a list of
# (node_id, lo, hi, left_id, right_id) rows describing the new subtree;
# replaced_id == -1 installs a fresh root (new round).

# coordinator round-trip requests
REQ_RANGE_SUMMARY = "aq.range_summary"  # (lo, hi, bucket) -> (count, bucket, seps)
REQ_SUBTREE_COUNTS = "aq.subtree_counts"  # (subtree_root_id,) -> preorder counts
