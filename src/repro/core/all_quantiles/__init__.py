"""§4 — continuous tracking of *all* quantiles simultaneously.

The coordinator maintains a binary tree over the universe (Figure 1) from
which the rank of any ``x`` can be extracted with additive error ``ε|A|``;
total communication ``O(k/ε · log n · log²(1/ε))`` (Theorem 4.1).
"""

from repro.core.all_quantiles.protocol import AllQuantilesProtocol
from repro.core.all_quantiles.tree import QuantileTree, TreeNode

__all__ = ["AllQuantilesProtocol", "QuantileTree", "TreeNode"]
