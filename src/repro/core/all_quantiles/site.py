"""Site-side state of the §4 all-quantiles protocol.

Each site mirrors the coordinator's tree (intervals and shape only — no
counts) so it can route each arrival down the root-to-leaf path, keeping an
unreported delta per node. When a node's delta reaches ``θm/k`` the site
pushes the increment.
"""

from __future__ import annotations

from repro.common.params import TrackingParams
from repro.core.all_quantiles.messages import (
    MSG_COUNT,
    MSG_INSTALL,
    REQ_RANGE_SUMMARY,
    REQ_SUBTREE_COUNTS,
)
from repro.core.all_quantiles.tree import QuantileTree, TreeNode, height_bound
from repro.core.localstore import ExactLocalStore, GKLocalStore, LocalStore
from repro.network.message import Message
from repro.network.protocol import Site
from repro.network.runtime import Network


class AllQuantilesSite(Site):
    """Site endpoint: local multiset plus a mirror of the tree shape."""

    def __init__(
        self,
        site_id: int,
        network: Network,
        params: TrackingParams,
        use_sketch: bool = False,
        sketch_epsilon: float | None = None,
        theta_scale: float = 1.0,
    ) -> None:
        super().__init__(site_id, network)
        self._params = params
        theta_epsilon = sketch_epsilon or params.epsilon / (
            8 * height_bound(params.epsilon)
        )
        self._store: LocalStore = (
            GKLocalStore(theta_epsilon) if use_sketch else ExactLocalStore()
        )
        self.tree = QuantileTree(universe_size=params.universe_size)
        self.round_base = 0
        self._deltas: dict[int, int] = {}
        self._theta = theta_scale * params.epsilon / (
            2 * height_bound(params.epsilon)
        )
        # Bumped on every install; lets an in-progress path walk notice that
        # one of its own count updates triggered a rebuild underneath it.
        self._generation = 0

    @property
    def store(self) -> LocalStore:
        """The site's local multiset (exposed for space audits)."""
        return self._store

    @property
    def local_total(self) -> int:
        return self._store.total

    def bootstrap(self, items: list[int]) -> None:
        """Install the warm-up prefix as the local multiset."""
        for item in items:
            self._store.insert(item)

    def _trigger(self) -> int:
        raw = self._theta * self.round_base / self._params.k
        return max(1, int(raw))

    def observe(self, item: int) -> None:
        self._store.insert(item)
        if self.tree.root_id < 0:
            return  # tree not installed yet
        trigger = self._trigger()
        generation = self._generation
        node = self.tree.root
        while True:
            delta = self._deltas.get(node.node_id, 0) + 1
            if delta >= trigger:
                self._deltas[node.node_id] = 0
                self.send(Message(MSG_COUNT, (node.node_id, delta)))
                if self._generation != generation:
                    # Our update triggered a rebuild that replaced the rest
                    # of this path; the install's exact count collection
                    # already accounted for this item below here.
                    return
            else:
                self._deltas[node.node_id] = delta
            if node.is_leaf:
                return
            left = self.tree.node(node.left)
            node = left if item < left.hi else self.tree.node(node.right)

    # -- coordinator pushes ---------------------------------------------------

    def on_message(self, message: Message) -> None:
        if message.kind == MSG_INSTALL:
            round_base, replaced_id, parent_id, spec = message.payload
            self.round_base = int(round_base)
            self._install(int(replaced_id), int(parent_id), spec)
            return
        super().on_message(message)

    def _install(self, replaced_id: int, parent_id: int, spec) -> None:
        self._generation += 1
        if replaced_id < 0:
            # Fresh root: drop everything.
            self.tree = QuantileTree(universe_size=self._params.universe_size)
            self._deltas.clear()
        else:
            for removed in self.tree.remove_subtree(replaced_id):
                self._deltas.pop(removed, None)
        new_root_id = -1
        for node_id, lo, hi, left, right in spec:
            self.tree.add_node(
                TreeNode(
                    node_id=int(node_id),
                    lo=int(lo),
                    hi=int(hi),
                    left=int(left),
                    right=int(right),
                )
            )
            if new_root_id < 0:
                new_root_id = int(node_id)
        # Wire parents within the new subtree.
        for node_id, _lo, _hi, left, right in spec:
            for child in (int(left), int(right)):
                if child >= 0:
                    self.tree.node(child).parent = int(node_id)
        if parent_id < 0:
            self.tree.root_id = new_root_id
        else:
            parent = self.tree.node(parent_id)
            new_root = self.tree.node(new_root_id)
            new_root.parent = parent_id
            if parent.lo == new_root.lo:
                parent.left = new_root_id
            else:
                parent.right = new_root_id

    # -- coordinator requests ---------------------------------------------

    def on_request(self, message: Message) -> Message:
        if message.kind == REQ_RANGE_SUMMARY:
            lo, hi, bucket = message.payload
            count, bucket, separators = self._store.summary(
                int(lo), int(hi), int(bucket)
            )
            return Message(REQ_RANGE_SUMMARY, (count, bucket, separators))
        if message.kind == REQ_SUBTREE_COUNTS:
            subtree_root = int(message.payload)
            counts = []
            for node_id in self.tree.preorder(subtree_root):
                node = self.tree.node(node_id)
                counts.append(self._store.range_count(node.lo, node.hi))
                self._deltas[node_id] = 0
            return Message(REQ_SUBTREE_COUNTS, counts)
        return super().on_request(message)
