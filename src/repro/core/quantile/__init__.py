"""§3 — optimal continuous tracking of a single φ-quantile (the median).

Total communication ``O(k/ε · log n)`` (Theorem 3.1), matching the lower
bound (Theorem 3.2).
"""

from repro.core.quantile.protocol import QuantileProtocol

__all__ = ["QuantileProtocol"]
