"""Coordinator-side state of the §3.1 quantile protocol.

The coordinator owns the dynamic interval partition (each interval holds
roughly between ``εm/8`` and ``εm/2`` items), the tracked position ``M``,
and the drift counters that trigger recentering. Rounds restart whenever
``|A|`` doubles; each round costs ``O(k/ε)`` words, giving Theorem 3.1's
``O(k/ε · log n)`` total.
"""

from __future__ import annotations

import bisect

from repro.common.errors import ProtocolError
from repro.common.params import TrackingParams
from repro.core.quantile.messages import (
    MSG_DRIFT,
    MSG_INTERVAL,
    MSG_REBUILD,
    MSG_RECENTER,
    MSG_SPLIT,
    REQ_INTERVAL_COUNTS,
    REQ_RANGE_COUNTS,
    REQ_RANGE_SUMMARY,
    REQ_RANK,
    REQ_SUMMARY,
    SIDE_LEFT,
)
from repro.network.message import Message
from repro.network.protocol import Coordinator
from repro.network.runtime import Network
from repro.structures.intervals import IntervalPartition

_RANGE_PARTS = 8


def merge_rank_estimator(
    replies: list[tuple[int, int, list[int]]],
) -> tuple[int, list[int], "callable"]:
    """Combine per-site equi-depth summaries into a global rank estimator.

    ``replies`` holds ``(count, bucket, separators)`` per site. Returns the
    exact total, the sorted candidate separator values, and a function
    ``est_rank(x)`` whose error is below ``Σ_j bucket_j``.
    """
    total = sum(count for count, _bucket, _seps in replies)
    candidates = sorted({sep for _c, _b, seps in replies for sep in seps})
    per_site = [(bucket, sorted(seps)) for _c, bucket, seps in replies]

    def est_rank(value: int) -> int:
        return sum(
            bucket * bisect.bisect_right(seps, value)
            for bucket, seps in per_site
        )

    return total, candidates, est_rank


class QuantileCoordinator(Coordinator):
    """Maintains ``M`` (the tracked φ-quantile) and the interval partition."""

    def __init__(
        self,
        network: Network,
        params: TrackingParams,
        phi: float,
        update_fraction: float = 0.5,
    ) -> None:
        super().__init__(network)
        self._params = params
        self._phi = phi
        # Drift that triggers a recenter, as a fraction of eps*m. The
        # paper's value is 1/2; exposed for ablation A2.
        self._update_fraction = update_fraction
        self.partition: IntervalPartition | None = None
        self._unsplittable: list[bool] = []
        self.tracked = 1  # M
        self.round_base = 0  # m at round start
        self._baseline_rank = 0  # exact count(<= M) at last recenter
        self._baseline_total = 0  # exact |A| at last recenter
        self._drift = [0, 0]
        self._reported_this_round = 0
        self.rounds_completed = 0
        self.recenters = 0
        self.splits = 0

    # -- thresholds -----------------------------------------------------------

    def _separator_step(self) -> int:
        """Target rank gap between global separators: ``3εm/16``."""
        return max(1, int(3 * self._params.epsilon * self.round_base / 16))

    def _split_threshold(self) -> int:
        return max(2, int(self._params.epsilon * self.round_base / 4))

    def _recenter_threshold(self) -> float:
        return self._update_fraction * self._params.epsilon * self.round_base

    def _recenter_slack(self) -> float:
        return self._params.epsilon * self.round_base / 4

    # -- round (re)build --------------------------------------------------

    def rebuild(self) -> None:
        """Start a new round: fresh partition, exact counts, fresh ``M``."""
        replies = self.network.request_all(Message(REQ_SUMMARY))
        summaries = [tuple(reply.payload) for reply in replies]
        total, candidates, est_rank = merge_rank_estimator(summaries)
        if total <= 0:
            raise ProtocolError("rebuild with no items at any site")
        self.round_base = total
        step = self._separator_step()
        separators: list[int] = []
        next_target = step
        for value in candidates:
            if est_rank(value) >= next_target:
                separators.append(value)
                next_target = est_rank(value) + step
        self.partition = IntervalPartition.from_separators(
            separators, self._params.universe_size
        )
        self._unsplittable = [False] * len(self.partition)
        # Sites must install boundaries before exact counts are collected.
        self.network.broadcast(
            Message(MSG_REBUILD, (total, self.partition.separators(), 1))
        )
        count_replies = self.network.request_all(Message(REQ_INTERVAL_COUNTS))
        per_interval = [0] * len(self.partition)
        for reply in count_replies:
            for index, count in enumerate(reply.payload):
                per_interval[index] += int(count)
        for index, count in enumerate(per_interval):
            self.partition.set_count(index, count)
        # Choose M: the separator whose exact cumulative rank is closest to
        # the target rank phi * m.
        target = self._phi * total
        best_value, best_rank, best_gap = 1, 0, float("inf")
        cumulative = 0
        bounds = self.partition.boundaries()
        for index in range(len(self.partition) - 1):
            cumulative += per_interval[index]
            separator = bounds[index + 1] - 1
            gap = abs(cumulative - target)
            if gap < best_gap:
                best_value, best_rank, best_gap = separator, cumulative, gap
        # The top of the universe is always a candidate: the last interval
        # has no separator of its own (matters when the target rank falls
        # inside it, e.g. tiny two-value universes).
        if abs(total - target) < best_gap:
            best_value, best_rank = self._params.universe_size, total
        self.tracked = best_value
        self._baseline_rank = best_rank
        self._baseline_total = total
        self._drift = [0, 0]
        self._reported_this_round = 0
        self.rounds_completed += 1
        self.network.broadcast(Message(MSG_RECENTER, self.tracked))

    # -- message handling --------------------------------------------------

    def on_message(self, site_id: int, message: Message) -> None:
        if message.kind == MSG_INTERVAL:
            index, amount = message.payload
            self._on_interval_update(int(index), int(amount))
            return
        if message.kind == MSG_DRIFT:
            side, amount = message.payload
            self._on_drift(int(side), int(amount))
            return
        raise ProtocolError(f"unexpected message kind {message.kind!r}")

    def _on_interval_update(self, index: int, amount: int) -> None:
        if self.partition is None:
            raise ProtocolError("interval update before first rebuild")
        count = self.partition.add_count(index, amount)
        if count >= self._split_threshold() and not self._unsplittable[index]:
            self._split(index)

    def _on_drift(self, side: int, amount: int) -> None:
        self._drift[side] += amount
        self._reported_this_round += amount
        if self.round_base + self._reported_this_round >= 2 * self.round_base:
            self.rebuild()
            return
        est_total = self._baseline_total + self._drift[0] + self._drift[1]
        est_rank = self._baseline_rank + self._drift[SIDE_LEFT]
        if abs(est_rank - self._phi * est_total) >= self._recenter_threshold():
            self._recenter()

    # -- interval splitting -------------------------------------------------

    def _split(self, index: int) -> None:
        """Split interval ``index`` near its median; exact child counts."""
        partition = self.partition
        interval = partition.interval(index)
        lo, hi = interval.lo, interval.hi
        if hi - lo < 2:
            self._unsplittable[index] = True
            return
        replies = self.network.request_all(
            Message(REQ_RANGE_SUMMARY, (lo, hi, _RANGE_PARTS))
        )
        summaries = [tuple(reply.payload) for reply in replies]
        total_in, candidates, est_rank = merge_rank_estimator(summaries)
        valid = [value for value in candidates if lo <= value <= hi - 2]
        if total_in < 2 or not valid:
            self._unsplittable[index] = True
            partition.set_count(index, total_in)
            return
        separator = min(valid, key=lambda v: abs(est_rank(v) - total_in / 2))
        count_replies = self.network.request_all(
            Message(REQ_RANGE_COUNTS, (lo, separator, hi))
        )
        left = sum(int(reply.payload[0]) for reply in count_replies)
        right = sum(int(reply.payload[1]) for reply in count_replies)
        if left == 0 or right == 0:
            self._unsplittable[index] = True
            partition.set_count(index, left + right)
            return
        partition.split(index, separator, left, right)
        self._unsplittable[index] = False
        self._unsplittable.insert(index + 1, False)
        self.splits += 1
        self.network.broadcast(Message(MSG_SPLIT, (index, separator)))

    # -- recentering -----------------------------------------------------

    def _poll_rank(self, value: int) -> tuple[int, int, int]:
        """Exact (count<value, count<=value, |A|) via one O(k) poll."""
        replies = self.network.request_all(Message(REQ_RANK, value))
        less = sum(int(reply.payload[0]) for reply in replies)
        leq = sum(int(reply.payload[1]) for reply in replies)
        total = sum(int(reply.payload[2]) for reply in replies)
        return less, leq, total

    def _acceptable(self, less: int, leq: int, total: int) -> bool:
        """Two-sided check tolerant of ties: rank window hits the target."""
        target = self._phi * total
        slack = self._recenter_slack()
        return less <= target + slack and leq >= target - slack

    def _recenter(self) -> None:
        """Move ``M`` back within ``εm/4`` of the target rank (exact polls)."""
        self.recenters += 1
        less, leq, total = self._poll_rank(self.tracked)
        if not self._acceptable(less, leq, total):
            target = self._phi * total
            move_left = less > target  # overshoot: need a smaller value
            separators = self.partition.separators()
            position = bisect.bisect_left(separators, self.tracked)
            if move_left:
                candidates = separators[:position][::-1]
                if not candidates or candidates[-1] != 1:
                    candidates.append(1)
            else:
                candidates = [
                    sep for sep in separators[position:] if sep != self.tracked
                ]
                top = self._params.universe_size
                if self.tracked != top and (not candidates or candidates[-1] != top):
                    candidates.append(top)
            best = (self.tracked, less, leq, abs(
                max(less - target, target - leq, 0)
            ))
            for candidate in candidates:
                c_less, c_leq, c_total = self._poll_rank(candidate)
                total = c_total
                violation = max(
                    c_less - self._phi * c_total,
                    self._phi * c_total - c_leq,
                    0,
                )
                if violation < best[3]:
                    best = (candidate, c_less, c_leq, violation)
                if self._acceptable(c_less, c_leq, c_total):
                    break
            self.tracked, less, leq, _ = best
        self._baseline_rank = leq
        self._baseline_total = total
        self._drift = [0, 0]
        self.network.broadcast(Message(MSG_RECENTER, self.tracked))

    # -- queries -----------------------------------------------------------

    @property
    def estimated_total(self) -> int:
        """Current estimate of ``|A|`` (lags by at most ``εm/4``)."""
        return self._baseline_total + self._drift[0] + self._drift[1]
