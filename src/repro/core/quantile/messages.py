"""Message kinds of the §3.1 quantile protocol (shared by both endpoints)."""

# site -> coordinator pushes
MSG_INTERVAL = "q.interval"  # (interval_index, amount): interval counter update
MSG_DRIFT = "q.drift"  # (side, amount): arrivals left/right of M

# coordinator -> site pushes
MSG_REBUILD = "q.rebuild"  # (round_base, separators, M): new round state
MSG_SPLIT = "q.split"  # (interval_index, separator): split an interval
MSG_RECENTER = "q.recenter"  # (M,): new tracked quantile position

# coordinator round-trip requests
REQ_SUMMARY = "q.summary"  # () -> (local_total, bucket, separators)
REQ_RANGE_SUMMARY = "q.range_summary"  # (lo, hi, parts) -> (count, bucket, seps)
REQ_RANK = "q.rank"  # (x,) -> (less, leq, local_total)
REQ_RANGE_COUNTS = "q.range_counts"  # (lo, mid, hi) -> (left, right)
REQ_INTERVAL_COUNTS = "q.interval_counts"  # () -> per-interval exact counts

SIDE_LEFT = 0
SIDE_RIGHT = 1
