"""Site-side state of the §3.1 quantile protocol.

Each site keeps its local multiset (exactly, in a sorted list, or — the
small-space variant — in a Greenwald–Khanna sketch), mirrors the
coordinator's interval boundaries, and pushes two families of counter
updates:

* per-interval arrival counts, every ``εm/4k`` arrivals into an interval,
* left/right-of-``M`` drift counts, every ``εm/8k`` arrivals on a side.

On request it ships equi-depth summaries: full summaries use the paper's
``ε|Aj|/32`` bucket (global rank error ``εm/32``); split probes within an
interval ``I`` use ``|Aj ∩ I|/8`` (error relative to ``I``).
"""

from __future__ import annotations

import bisect

from repro.common.params import TrackingParams
from repro.core.localstore import ExactLocalStore, GKLocalStore, LocalStore
from repro.core.quantile.messages import (
    MSG_DRIFT,
    MSG_INTERVAL,
    MSG_REBUILD,
    MSG_RECENTER,
    MSG_SPLIT,
    REQ_INTERVAL_COUNTS,
    REQ_RANGE_COUNTS,
    REQ_RANGE_SUMMARY,
    REQ_RANK,
    REQ_SUMMARY,
    SIDE_LEFT,
    SIDE_RIGHT,
)
from repro.network.message import Message
from repro.network.protocol import Site
from repro.network.runtime import Network

_SUMMARY_FRACTION = 32  # full-summary bucket: eps * |Aj| / 32 (§3.1)


class QuantileSite(Site):
    """Exact site endpoint: local items kept in a sorted list."""

    def __init__(
        self, site_id: int, network: Network, params: TrackingParams
    ) -> None:
        super().__init__(site_id, network)
        self._params = params
        self._store: LocalStore = self._make_store()
        # Round state, installed by MSG_REBUILD:
        self.round_base = 0  # m at round start
        self._boundaries: list[int] = []  # interval boundaries incl. sentinels
        self._interval_deltas: list[int] = []
        self.tracked_position = 0  # M
        self._drift = [0, 0]  # unreported arrivals left/right of M

    def _make_store(self) -> LocalStore:
        return ExactLocalStore()

    @property
    def local_total(self) -> int:
        return self._store.total

    # -- thresholds ---------------------------------------------------------

    def _interval_trigger(self) -> int:
        raw = self._params.epsilon * self.round_base / (4 * self._params.k)
        return max(1, int(raw))

    def _drift_trigger(self) -> int:
        raw = self._params.epsilon * self.round_base / (8 * self._params.k)
        return max(1, int(raw))

    # -- arrivals ------------------------------------------------------------

    def bootstrap(self, items: list[int]) -> None:
        """Install the warm-up prefix as the local multiset."""
        for item in items:
            self._store.insert(item)

    def observe(self, item: int) -> None:
        self._store.insert(item)
        if not self._boundaries:
            return  # round state not installed yet (should not happen)
        index = bisect.bisect_right(self._boundaries, item) - 1
        index = min(max(index, 0), len(self._interval_deltas) - 1)
        self._interval_deltas[index] += 1
        if self._interval_deltas[index] >= self._interval_trigger():
            amount = self._interval_deltas[index]
            self._interval_deltas[index] = 0
            self.send(Message(MSG_INTERVAL, (index, amount)))
        side = SIDE_LEFT if item <= self.tracked_position else SIDE_RIGHT
        self._drift[side] += 1
        if self._drift[side] >= self._drift_trigger():
            amount = self._drift[side]
            self._drift[side] = 0
            self.send(Message(MSG_DRIFT, (side, amount)))

    # -- coordinator pushes --------------------------------------------------

    def on_message(self, message: Message) -> None:
        if message.kind == MSG_REBUILD:
            round_base, separators, tracked = message.payload
            self.round_base = int(round_base)
            universe = self._params.universe_size
            bounds = [1]
            for sep in separators:
                boundary = int(sep) + 1
                if bounds[-1] < boundary <= universe:
                    bounds.append(boundary)
            bounds.append(universe + 1)
            self._boundaries = bounds
            self._interval_deltas = [0] * (len(bounds) - 1)
            self.tracked_position = int(tracked)
            self._drift = [0, 0]
            return
        if message.kind == MSG_SPLIT:
            index, separator = message.payload
            self._boundaries.insert(int(index) + 1, int(separator) + 1)
            self._interval_deltas[int(index)] = 0
            self._interval_deltas.insert(int(index) + 1, 0)
            return
        if message.kind == MSG_RECENTER:
            self.tracked_position = int(message.payload)
            self._drift = [0, 0]
            return
        super().on_message(message)

    # -- coordinator requests -------------------------------------------------

    def on_request(self, message: Message) -> Message:
        if message.kind == REQ_SUMMARY:
            bucket = max(
                1,
                int(
                    self._params.epsilon
                    * self._store.total
                    / _SUMMARY_FRACTION
                ),
            )
            count, bucket, separators = self._store.summary(
                1, self._params.universe_size + 1, bucket
            )
            return Message(REQ_SUMMARY, (count, bucket, separators))
        if message.kind == REQ_RANGE_SUMMARY:
            lo, hi, parts = message.payload
            in_range = max(0, self._store.range_count(int(lo), int(hi)))
            bucket = max(1, in_range // int(parts))
            count, bucket, separators = self._store.summary(
                int(lo), int(hi), bucket
            )
            return Message(REQ_RANGE_SUMMARY, (count, bucket, separators))
        if message.kind == REQ_RANK:
            item = int(message.payload)
            return Message(
                REQ_RANK,
                (
                    self._store.count_less(item),
                    self._store.count_leq(item),
                    self._store.total,
                ),
            )
        if message.kind == REQ_RANGE_COUNTS:
            lo, mid, hi = message.payload
            left = self._store.range_count(int(lo), int(mid) + 1)
            right = self._store.range_count(int(mid) + 1, int(hi))
            return Message(REQ_RANGE_COUNTS, (left, right))
        if message.kind == REQ_INTERVAL_COUNTS:
            counts = [
                self._store.range_count(
                    self._boundaries[i], self._boundaries[i + 1]
                )
                for i in range(len(self._boundaries) - 1)
            ]
            return Message(REQ_INTERVAL_COUNTS, counts)
        return super().on_request(message)


class SketchQuantileSite(QuantileSite):
    """§3.1 small-space variant: local order statistics from a GK sketch.

    The site's rank and range answers become ``ε'``-approximate
    (``ε' = ε/64`` so they stay within the protocol's constant slack); the
    protocol's cost shape is unchanged while per-site space drops to
    ``O(1/ε · log(εn))``.
    """

    def __init__(
        self,
        site_id: int,
        network: Network,
        params: TrackingParams,
        sketch_epsilon: float | None = None,
    ) -> None:
        self._sketch_epsilon = sketch_epsilon or params.epsilon / 64
        super().__init__(site_id, network, params)

    def _make_store(self) -> LocalStore:
        return GKLocalStore(self._sketch_epsilon)

    @property
    def sketch(self):
        """The site's local GK summary (exposed for space audits)."""
        return self._store.sketch
