"""Public facade of the §3.1 single-quantile tracking protocol (Theorem 3.1).

Usage::

    from repro import QuantileProtocol, TrackingParams

    protocol = QuantileProtocol(
        TrackingParams(num_sites=8, epsilon=0.02), phi=0.5
    )
    for site_id, item in stream:
        protocol.process(site_id, item)
    median = protocol.quantile()

Guarantee: at all times the returned value is a φ'-quantile of the full
stream for some ``φ' ∈ [φ − ε, φ + ε]``.
"""

from __future__ import annotations

from repro.common.params import TrackingParams
from repro.common.validation import require_phi
from repro.core.quantile.coordinator import QuantileCoordinator
from repro.core.quantile.site import QuantileSite, SketchQuantileSite
from repro.network.protocol import ContinuousTrackingProtocol, Site


class QuantileProtocol(ContinuousTrackingProtocol):
    """Continuous φ-quantile tracking with cost ``O(k/ε · log n)``."""

    def __init__(
        self,
        params: TrackingParams,
        phi: float = 0.5,
        use_sketch_sites: bool = False,
        update_fraction: float = 0.5,
    ) -> None:
        """Create the protocol.

        Args:
            params: shared tracking parameters (``k``, ``ε``, universe).
            phi: the quantile fraction to track (0.5 = median).
            use_sketch_sites: replace exact per-site multisets with the
                §3.1 Greenwald–Khanna small-space variant.
            update_fraction: drift (as a fraction of ``ε·m``) that triggers
                recentering ``M``; the paper's value is 1/2 (ablation A2).
        """
        require_phi(phi)
        self._phi = phi
        self._use_sketch_sites = use_sketch_sites
        self._update_fraction = update_fraction
        super().__init__(params)

    @property
    def phi(self) -> float:
        """The tracked quantile fraction."""
        return self._phi

    def _build(self) -> None:
        site_cls = SketchQuantileSite if self._use_sketch_sites else QuantileSite
        self._sites = [
            site_cls(site_id, self.network, self.params)
            for site_id in range(self.params.num_sites)
        ]
        self._coordinator = QuantileCoordinator(
            self.network,
            self.params,
            self._phi,
            update_fraction=self._update_fraction,
        )
        self.network.bind(self._coordinator, self._sites)

    def _site(self, site_id: int) -> Site:
        return self._sites[site_id]

    def _initialize(self, per_site_items: list[list[int]]) -> None:
        for site, items in zip(self._sites, per_site_items):
            site.bootstrap(items)
        self._coordinator.rebuild()

    # -- queries -------------------------------------------------------------

    def quantile(self) -> int:
        """The coordinator's current approximate φ-quantile."""
        if self.in_warmup:
            ordered = sorted(
                item for item, cnt in self._warmup_counts.items() for _ in range(cnt)
            )
            if not ordered:
                raise IndexError("quantile queried before any arrival")
            index = min(len(ordered) - 1, int(self._phi * len(ordered)))
            return ordered[index]
        return self._coordinator.tracked

    @property
    def estimated_total(self) -> int:
        """The coordinator's current estimate of ``|A|``."""
        if self.in_warmup:
            return self.items_processed
        return self._coordinator.estimated_total

    @property
    def rounds_completed(self) -> int:
        """Number of full rebuilds (one per doubling of ``|A|``)."""
        if self.in_warmup:
            return 0
        return self._coordinator.rounds_completed

    @property
    def recenters(self) -> int:
        """Number of times ``M`` was re-examined after drift."""
        if self.in_warmup:
            return 0
        return self._coordinator.recenters

    @property
    def splits(self) -> int:
        """Number of interval splits performed."""
        if self.in_warmup:
            return 0
        return self._coordinator.splits
