"""Per-site local multiset stores shared by the quantile-family protocols.

A store answers the order-statistics questions the coordinator asks of a
site: counts below a value, counts in a range, and equi-depth separators of
a range. Two implementations:

* :class:`ExactLocalStore` — a sorted list; exact answers (the default the
  paper's analysis assumes).
* :class:`GKLocalStore` — a Greenwald–Khanna sketch; ``ε'``-approximate
  answers in ``O(1/ε' · log(ε'n))`` space (the paper's small-space remark).
"""

from __future__ import annotations

import bisect
from abc import ABC, abstractmethod

from repro.sketches.gk import GKQuantileSketch
from repro.structures.intervals import equi_depth_separators


class LocalStore(ABC):
    """Interface over a site's local multiset."""

    @abstractmethod
    def insert(self, item: int) -> None:
        """Record one local arrival."""

    @property
    @abstractmethod
    def total(self) -> int:
        """Number of items stored."""

    @abstractmethod
    def count_less(self, value: int) -> int:
        """Items strictly below ``value``."""

    @abstractmethod
    def count_leq(self, value: int) -> int:
        """Items at most ``value``."""

    def range_count(self, lo: int, hi: int) -> int:
        """Items in the half-open value range ``[lo, hi)``."""
        return self.count_less(hi) - self.count_less(lo)

    @abstractmethod
    def summary(self, lo: int, hi: int, bucket: int) -> tuple[int, int, list[int]]:
        """Equi-depth digest of ``[lo, hi)``: ``(count, bucket, separators)``.

        The separators split the local items of the range into buckets of
        ``bucket`` items, so any in-range rank can be reconstructed from
        them with error at most ``bucket``. The caller chooses the bucket —
        the paper's protocols use ``ε|Aj|/32`` for full summaries (rank
        error ``εm/32`` globally) and ``|Aj ∩ I|/8`` for split probes.
        """


class ExactLocalStore(LocalStore):
    """Sorted-list store with exact answers."""

    def __init__(self, items: list[int] | None = None) -> None:
        self._items = sorted(items) if items else []

    def insert(self, item: int) -> None:
        bisect.insort(self._items, item)

    @property
    def total(self) -> int:
        return len(self._items)

    def count_less(self, value: int) -> int:
        return bisect.bisect_left(self._items, value)

    def count_leq(self, value: int) -> int:
        return bisect.bisect_right(self._items, value)

    def summary(self, lo: int, hi: int, bucket: int) -> tuple[int, int, list[int]]:
        left = self.count_less(lo)
        right = self.count_less(hi)
        values = self._items[left:right]
        if not values:
            return 0, 1, []
        bucket = max(1, bucket)
        return len(values), bucket, equi_depth_separators(values, bucket)


class GKLocalStore(LocalStore):
    """Greenwald–Khanna-backed store with ``ε'``-approximate answers."""

    def __init__(self, epsilon: float, items: list[int] | None = None) -> None:
        self._sketch = GKQuantileSketch(epsilon)
        self._total = 0
        for item in items or []:
            self.insert(item)

    @property
    def sketch(self) -> GKQuantileSketch:
        """The underlying summary (exposed for space audits)."""
        return self._sketch

    def insert(self, item: int) -> None:
        self._sketch.insert(item)
        self._total += 1

    @property
    def total(self) -> int:
        return self._total

    def count_less(self, value: int) -> int:
        return self._sketch.rank(value - 1)

    def count_leq(self, value: int) -> int:
        return self._sketch.rank(value)

    def summary(self, lo: int, hi: int, bucket: int) -> tuple[int, int, list[int]]:
        count = max(0, self.range_count(lo, hi))
        if count == 0:
            return 0, 1, []
        bucket = max(1, bucket)
        base = self.count_less(lo)
        separators: list[int] = []
        next_target = bucket
        for value, _g, _delta in self._sketch.merged_values():
            if not lo <= value < hi:
                continue
            in_range_rank = self.count_leq(value) - base
            if in_range_rank >= next_target:
                separators.append(value)
                next_target = in_range_rank + bucket
        return count, bucket, separators
