"""Site-side state of the §2.1 heavy-hitter protocol.

Each site ``Sj`` maintains:

* ``Sj.m`` — its current estimate of the global count ``m`` (refreshed by
  coordinator broadcasts),
* ``Δ(m)`` — arrivals since its last ``(all, ·)`` message,
* ``Δ(mx)`` for each item ``x`` — arrivals of ``x`` since the last
  ``(x, ·)`` message about it.

When ``Δ(m)`` (resp. ``Δ(mx)``) reaches the trigger ``ε·Sj.m/3k`` the site
sends that amount to the coordinator and resets the counter. Sketch-backed
sites (§2.1's small-space remark) drive the same triggers from SpaceSaving
estimates instead of exact counts.
"""

from __future__ import annotations

from collections import Counter

from repro.common.params import TrackingParams
from repro.network.message import Message
from repro.network.protocol import Site
from repro.network.runtime import Network
from repro.sketches.spacesaving import SpaceSavingSketch

MSG_ALL = "hh.all"
MSG_ITEM = "hh.item"
MSG_NEW_M = "hh.new_m"
REQ_LOCAL_COUNT = "hh.local_count"


class HeavyHitterSite(Site):
    """Exact-counting site endpoint for the heavy-hitter protocol."""

    def __init__(
        self,
        site_id: int,
        network: Network,
        params: TrackingParams,
        trigger_divisor: int = 3,
    ) -> None:
        super().__init__(site_id, network)
        self._params = params
        self._trigger_divisor = trigger_divisor
        self.global_estimate = 0  # Sj.m
        self.delta_total = 0  # Sj.Δ(m)
        self.delta_items: Counter[int] = Counter()  # Sj.Δ(mx)
        self.local_total = 0  # |Aj|, exact

    def bootstrap(self, items: list[int], global_count: int) -> None:
        """Install the warm-up prefix (all deltas already reported)."""
        self.local_total = len(items)
        self.global_estimate = global_count
        self.delta_total = 0
        self.delta_items.clear()

    def _trigger(self) -> int:
        """The current send threshold ``max(1, ⌊ε·Sj.m/(d·k)⌋)``.

        The paper fixes ``d = 3`` (splitting the ε error budget between the
        total count, the item counts, and the classification margin);
        ``d`` is exposed for the ablation experiment A1.
        """
        raw = self._params.epsilon * self.global_estimate / (
            self._trigger_divisor * self._params.k
        )
        return max(1, int(raw))

    def observe(self, item: int) -> None:
        self.local_total += 1
        self.delta_total += 1
        self.delta_items[item] += 1
        trigger = self._trigger()
        if self.delta_items[item] >= trigger:
            amount = self.delta_items[item]
            self.delta_items[item] = 0
            self.send(Message(MSG_ITEM, (item, amount)))
        if self.delta_total >= trigger:
            amount = self.delta_total
            self.delta_total = 0
            self.send(Message(MSG_ALL, amount))

    def on_message(self, message: Message) -> None:
        if message.kind == MSG_NEW_M:
            # Coordinator broadcast of the exact global count.
            self.global_estimate = int(message.payload)
            self.delta_total = 0
            return
        super().on_message(message)

    def on_request(self, message: Message) -> Message:
        if message.kind == REQ_LOCAL_COUNT:
            return Message(REQ_LOCAL_COUNT, self.local_total)
        return super().on_request(message)


class SketchHeavyHitterSite(HeavyHitterSite):
    """§2.1 small-space variant: per-item deltas driven by SpaceSaving.

    The site holds an ``O(1/ε')`` SpaceSaving sketch (``ε' = ε/6`` so the
    sketch error stays within the protocol's slack) and reports the growth
    of an item's *estimate* since its last report. Items evicted from the
    sketch simply stop reporting; the coordinator's estimate for them stays
    a valid underestimate.
    """

    def __init__(
        self,
        site_id: int,
        network: Network,
        params: TrackingParams,
        trigger_divisor: int = 3,
        sketch_epsilon: float | None = None,
    ) -> None:
        super().__init__(site_id, network, params, trigger_divisor)
        self._sketch_epsilon = sketch_epsilon or params.epsilon / 6
        self._sketch = SpaceSavingSketch(self._sketch_epsilon)
        self._reported: dict[int, int] = {}

    @property
    def sketch(self) -> SpaceSavingSketch:
        """The site's local summary (exposed for space audits)."""
        return self._sketch

    def bootstrap(self, items: list[int], global_count: int) -> None:
        super().bootstrap(items, global_count)
        for item in items:
            self._sketch.insert(item)
        # Warm-up counts were delivered exactly; seed baselines with the
        # sketch's current view so future deltas measure post-warm-up growth.
        self._reported = dict(self._sketch.items())

    def observe(self, item: int) -> None:
        self.local_total += 1
        self.delta_total += 1
        self._sketch.insert(item)
        trigger = self._trigger()
        estimate = self._sketch.guaranteed_count(item)
        baseline = self._reported.get(item, 0)
        if estimate - baseline >= trigger:
            self._reported[item] = estimate
            self.send(Message(MSG_ITEM, (item, estimate - baseline)))
        if self.delta_total >= trigger:
            amount = self.delta_total
            self.delta_total = 0
            self.send(Message(MSG_ALL, amount))
