"""Coordinator-side state of the §2.1 heavy-hitter protocol.

The coordinator keeps ``C.m`` (an ε/3-underestimate of ``m``) and
``C.mx`` for every reported item (ε/3-underestimates of each ``mx``).
After ``k`` ``(all, ·)`` signals it synchronises: it collects exact local
counts from every site, sets ``C.m`` to the exact total, and broadcasts it,
which starts a new round.
"""

from __future__ import annotations

from collections import Counter

from repro.common.params import TrackingParams
from repro.network.message import Message
from repro.network.protocol import Coordinator
from repro.network.runtime import Network
from repro.core.heavy_hitters.site import (
    MSG_ALL,
    MSG_ITEM,
    MSG_NEW_M,
    REQ_LOCAL_COUNT,
)


class HeavyHitterCoordinator(Coordinator):
    """Tracks ``C.m`` and ``C.mx`` and runs the round-synchronisation step."""

    def __init__(self, network: Network, params: TrackingParams) -> None:
        super().__init__(network)
        self._params = params
        self.global_estimate = 0  # C.m
        self.item_estimates: Counter[int] = Counter()  # C.mx
        self._all_signals = 0
        self.rounds_completed = 0

    def bootstrap(self, counts: Counter[int], total: int) -> None:
        """Install exact knowledge of the warm-up prefix and broadcast m."""
        self.item_estimates = Counter(counts)
        self.global_estimate = total
        self._all_signals = 0
        self.network.broadcast(Message(MSG_NEW_M, total))

    def on_message(self, site_id: int, message: Message) -> None:
        if message.kind == MSG_ALL:
            self.global_estimate += int(message.payload)
            self._all_signals += 1
            if self._all_signals >= self._params.k:
                self._synchronise()
            return
        if message.kind == MSG_ITEM:
            item, amount = message.payload
            self.item_estimates[item] += int(amount)
            return
        raise ValueError(f"unexpected message kind {message.kind!r}")

    def _synchronise(self) -> None:
        """Collect exact local counts, reset ``C.m``, broadcast the new value."""
        replies = self.network.request_all(Message(REQ_LOCAL_COUNT))
        exact_total = sum(int(reply.payload) for reply in replies)
        self.global_estimate = exact_total
        self._all_signals = 0
        self.rounds_completed += 1
        self.network.broadcast(Message(MSG_NEW_M, exact_total))

    def classify(self, phi: float, margin: float) -> dict[int, float]:
        """Items whose estimated ratio clears ``φ + margin``.

        Returns ``{item: C.mx / C.m}`` for every qualifying item.
        """
        if self.global_estimate <= 0:
            return {}
        cutoff = phi + margin
        return {
            item: estimate / self.global_estimate
            for item, estimate in self.item_estimates.items()
            if estimate / self.global_estimate >= cutoff
        }
