"""§2.1 — optimal continuous tracking of the φ-heavy hitters.

Total communication ``O(k/ε · log n)`` (Theorem 2.1), matching the paper's
lower bound (Theorem 2.4).
"""

from repro.core.heavy_hitters.protocol import HeavyHitterProtocol

__all__ = ["HeavyHitterProtocol"]
