"""Public facade of the §2.1 heavy-hitter tracking protocol (Theorem 2.1).

Usage::

    from repro import HeavyHitterProtocol, TrackingParams

    protocol = HeavyHitterProtocol(TrackingParams(num_sites=8, epsilon=0.02))
    for site_id, item in stream:
        protocol.process(site_id, item)
    hitters = protocol.heavy_hitters(phi=0.05)

Guarantee (for any query time and any ``φ > ε``): the returned set contains
every item with ``mx ≥ φ·m`` and no item with ``mx < (φ−ε)·m``.

Note on the classification threshold: the paper's rule (1) tests the
estimated ratio against ``φ + ε/2``, but its own error bounds
(``mx/m − ε/3 < C.mx/C.m < mx/m + ε/2``) make ``φ − ε/3`` the cutoff that
delivers the stated guarantee; we default to that and expose the margin for
experimentation (see DESIGN.md §2).
"""

from __future__ import annotations

from collections import Counter

from repro.common.params import TrackingParams
from repro.common.validation import require_phi
from repro.core.heavy_hitters.coordinator import HeavyHitterCoordinator
from repro.core.heavy_hitters.site import HeavyHitterSite, SketchHeavyHitterSite
from repro.network.protocol import ContinuousTrackingProtocol, Site


class HeavyHitterProtocol(ContinuousTrackingProtocol):
    """Continuous φ-heavy-hitter tracking with cost ``O(k/ε · log n)``."""

    def __init__(
        self,
        params: TrackingParams,
        use_sketch_sites: bool = False,
        classification_margin: float | None = None,
        trigger_divisor: int = 3,
    ) -> None:
        """Create the protocol.

        Args:
            params: shared tracking parameters (``k``, ``ε``, universe).
            use_sketch_sites: replace exact per-site counting with the
                §2.1 SpaceSaving small-space variant.
            classification_margin: offset added to ``φ`` when classifying;
                defaults to ``−ε/3`` (see module docstring).
            trigger_divisor: ``d`` in the site trigger ``ε·Sj.m/(d·k)``;
                the paper's value is 3. Smaller values send less but widen
                the estimate error to ``ε·m/d`` (ablation A1).
        """
        self._use_sketch_sites = use_sketch_sites
        if classification_margin is None:
            classification_margin = -params.epsilon / 3
        self._margin = classification_margin
        self._trigger_divisor = trigger_divisor
        super().__init__(params)

    def _build(self) -> None:
        site_cls = (
            SketchHeavyHitterSite if self._use_sketch_sites else HeavyHitterSite
        )
        self._sites = [
            site_cls(
                site_id,
                self.network,
                self.params,
                trigger_divisor=self._trigger_divisor,
            )
            for site_id in range(self.params.num_sites)
        ]
        self._coordinator = HeavyHitterCoordinator(self.network, self.params)
        self.network.bind(self._coordinator, self._sites)

    def _site(self, site_id: int) -> Site:
        return self._sites[site_id]

    def _initialize(self, per_site_items: list[list[int]]) -> None:
        total = sum(len(items) for items in per_site_items)
        counts: Counter[int] = Counter()
        for items in per_site_items:
            counts.update(items)
        # The sites must learn m before the coordinator broadcast lands, so
        # bootstrap site state first (broadcast then refreshes Sj.m anyway).
        for site, items in zip(self._sites, per_site_items):
            site.bootstrap(items, total)
        self._coordinator.bootstrap(counts, total)

    # -- queries -----------------------------------------------------------

    def heavy_hitters(self, phi: float) -> set[int]:
        """The coordinator's current approximate φ-heavy-hitter set."""
        require_phi(phi, self.params.epsilon)
        if self.in_warmup:
            total = max(1, self.items_processed)
            return {
                item
                for item, cnt in self._warmup_counts.items()
                if cnt / total >= phi
            }
        return set(self._coordinator.classify(phi, self._margin))

    def estimated_frequencies(self) -> dict[int, int]:
        """Snapshot of ``C.mx`` for every reported item."""
        if self.in_warmup:
            return dict(self._warmup_counts)
        return dict(self._coordinator.item_estimates)

    @property
    def estimated_total(self) -> int:
        """The coordinator's ``C.m``."""
        if self.in_warmup:
            return self.items_processed
        return self._coordinator.global_estimate

    @property
    def rounds_completed(self) -> int:
        """Number of coordinator synchronisation broadcasts so far."""
        if self.in_warmup:
            return 0
        return self._coordinator.rounds_completed

    # -- introspection for the lower-bound adversary ------------------------

    def site_trigger_threshold(self, site_id: int, item: int) -> int:
        """Copies of ``item`` that would make site ``site_id`` send next.

        Lemma 2.3's adversary is allowed to know each site's triggering
        threshold; this is the sanctioned inspection hook it uses.
        """
        if self.in_warmup:
            return 1
        site = self._sites[site_id]
        remaining_item = site._trigger() - site.delta_items.get(item, 0)
        remaining_total = site._trigger() - site.delta_total
        return max(1, min(remaining_item, remaining_total))
