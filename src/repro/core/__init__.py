"""The paper's tracking protocols: heavy hitters (§2), single quantile (§3),
and all quantiles (§4)."""

from repro.core.all_quantiles import AllQuantilesProtocol
from repro.core.heavy_hitters import HeavyHitterProtocol
from repro.core.quantile import QuantileProtocol

__all__ = [
    "AllQuantilesProtocol",
    "HeavyHitterProtocol",
    "QuantileProtocol",
]
