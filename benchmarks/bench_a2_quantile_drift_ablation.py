"""Benchmark A2 (ablation): recenter trigger cost/accuracy trade-off.

Regenerates the A2 table from DESIGN.md / EXPERIMENTS.md; run with
``pytest benchmarks/ --benchmark-only -s`` to see the table.
"""


def test_a2_quantile_drift_ablation(run_experiment_bench):
    result = run_experiment_bench("A2")
    assert result.experiment_id == "A2"
