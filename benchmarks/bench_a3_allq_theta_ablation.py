"""Benchmark A3 (ablation): count resolution theta trade-off.

Regenerates the A3 table from DESIGN.md / EXPERIMENTS.md; run with
``pytest benchmarks/ --benchmark-only -s`` to see the table.
"""


def test_a3_allq_theta_ablation(run_experiment_bench):
    result = run_experiment_bench("A3")
    assert result.experiment_id == "A3"
