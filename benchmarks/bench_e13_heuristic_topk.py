"""Benchmark E13: heuristic top-k monitoring vs worst-case-optimal tracking.

Regenerates the E13 table from DESIGN.md / EXPERIMENTS.md; run with
``pytest benchmarks/ --benchmark-only -s`` to see the table.
"""


def test_e13_heuristic_topk(run_experiment_bench):
    result = run_experiment_bench("E13")
    assert result.experiment_id == "E13"
