"""Benchmark E12: one-shot vs continuous Theta(log n) gap.

Regenerates the E12 table from DESIGN.md / EXPERIMENTS.md; run with
``pytest benchmarks/ --benchmark-only -s`` to see the table.
"""


def test_e12_oneshot_gap(run_experiment_bench):
    result = run_experiment_bench("E12")
    assert result.experiment_id == "E12"
