"""Benchmark E3: Theorem 2.4 - lower-bound constructions (Lemmas 2.2 + 2.3).

Regenerates the E3 table from DESIGN.md / EXPERIMENTS.md; run with
``pytest benchmarks/ --benchmark-only -s`` to see the table.
"""


def test_e3_hh_lower(run_experiment_bench):
    result = run_experiment_bench("E3")
    assert result.experiment_id == "E3"
