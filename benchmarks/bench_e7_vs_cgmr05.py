"""Benchmark E7: headline separation vs Cormode et al. 2005.

Regenerates the E7 table from DESIGN.md / EXPERIMENTS.md; run with
``pytest benchmarks/ --benchmark-only -s`` to see the table.
"""


def test_e7_vs_cgmr05(run_experiment_bench):
    result = run_experiment_bench("E7")
    assert result.experiment_id == "E7"
