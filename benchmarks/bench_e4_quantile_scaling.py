"""Benchmark E4: Theorem 3.1 - quantile cost O(k/eps log n).

Regenerates the E4 table from DESIGN.md / EXPERIMENTS.md; run with
``pytest benchmarks/ --benchmark-only -s`` to see the table.
"""


def test_e4_quantile_scaling(run_experiment_bench):
    result = run_experiment_bench("E4")
    assert result.experiment_id == "E4"
