"""Benchmark E5: Theorem 3.2 - median lower-bound construction.

Regenerates the E5 table from DESIGN.md / EXPERIMENTS.md; run with
``pytest benchmarks/ --benchmark-only -s`` to see the table.
"""


def test_e5_median_lower(run_experiment_bench):
    result = run_experiment_bench("E5")
    assert result.experiment_id == "E5"
