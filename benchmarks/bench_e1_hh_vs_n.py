"""Benchmark E1: Theorem 2.1 - heavy-hitter cost vs n (log n shape).

Regenerates the E1 table from DESIGN.md / EXPERIMENTS.md; run with
``pytest benchmarks/ --benchmark-only -s`` to see the table.
"""


def test_e1_hh_vs_n(run_experiment_bench):
    result = run_experiment_bench("E1")
    assert result.experiment_id == "E1"
