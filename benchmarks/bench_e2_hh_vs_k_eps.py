"""Benchmark E2: Theorem 2.1 - heavy-hitter cost linear in k and 1/eps.

Regenerates the E2 table from DESIGN.md / EXPERIMENTS.md; run with
``pytest benchmarks/ --benchmark-only -s`` to see the table.
"""


def test_e2_hh_vs_k_eps(run_experiment_bench):
    result = run_experiment_bench("E2")
    assert result.experiment_id == "E2"
