"""Benchmark E11: section 5 randomized sampling crossover.

Regenerates the E11 table from DESIGN.md / EXPERIMENTS.md; run with
``pytest benchmarks/ --benchmark-only -s`` to see the table.
"""


def test_e11_sampling(run_experiment_bench):
    result = run_experiment_bench("E11")
    assert result.experiment_id == "E11"
