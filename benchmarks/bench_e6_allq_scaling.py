"""Benchmark E6: Theorem 4.1 - all-quantile cost scaling.

Regenerates the E6 table from DESIGN.md / EXPERIMENTS.md; run with
``pytest benchmarks/ --benchmark-only -s`` to see the table.
"""


def test_e6_allq_scaling(run_experiment_bench):
    result = run_experiment_bench("E6")
    assert result.experiment_id == "E6"
