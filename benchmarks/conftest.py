"""Benchmark helpers: run an experiment once under pytest-benchmark and
print its claim-vs-measured table into the benchmark report."""

from __future__ import annotations

import pytest

from repro.harness import run_experiment


@pytest.fixture
def run_experiment_bench(benchmark, capsys):
    """Run one experiment exactly once under the benchmark timer and emit
    its rendered table (visible with ``pytest -s``)."""

    def runner(experiment_id: str):
        result = benchmark.pedantic(
            run_experiment,
            args=(experiment_id,),
            kwargs={"quick": True},
            rounds=1,
            iterations=1,
        )
        with capsys.disabled():
            print()
            print(result.render())
        assert result.rows, f"{experiment_id} produced no rows"
        return result

    return runner
