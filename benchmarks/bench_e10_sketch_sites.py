"""Benchmark E10: small-space sketch-backed site variants.

Regenerates the E10 table from DESIGN.md / EXPERIMENTS.md; run with
``pytest benchmarks/ --benchmark-only -s`` to see the table.
"""


def test_e10_sketch_sites(run_experiment_bench):
    result = run_experiment_bench("E10")
    assert result.experiment_id == "E10"
