"""Benchmark E9: at-all-times eps-correctness audit.

Regenerates the E9 table from DESIGN.md / EXPERIMENTS.md; run with
``pytest benchmarks/ --benchmark-only -s`` to see the table.
"""


def test_e9_accuracy(run_experiment_bench):
    result = run_experiment_bench("E9")
    assert result.experiment_id == "E9"
