"""Benchmark E8: Figure 1 - tree structural invariants.

Regenerates the E8 table from DESIGN.md / EXPERIMENTS.md; run with
``pytest benchmarks/ --benchmark-only -s`` to see the table.
"""


def test_e8_tree_structure(run_experiment_bench):
    result = run_experiment_bench("E8")
    assert result.experiment_id == "E8"
