"""Micro-benchmarks: per-item processing throughput of each protocol.

These are not paper claims (the paper measures communication, not wall
clock) but keep the simulator's Python-level costs visible — the repro
band notes stream-throughput is the slow part of a Python build.
"""

from __future__ import annotations

import pytest

from repro.common.params import TrackingParams
from repro.core.all_quantiles import AllQuantilesProtocol
from repro.core.heavy_hitters import HeavyHitterProtocol
from repro.core.quantile import QuantileProtocol
from repro.sketches.gk import GKQuantileSketch
from repro.sketches.spacesaving import SpaceSavingSketch
from repro.structures.fenwick import FenwickTree
from repro.workloads import make_stream, round_robin_partitioner, zipf_stream

UNIVERSE = 1 << 14
N = 20_000


@pytest.fixture(scope="module")
def stream():
    return make_stream(
        zipf_stream, round_robin_partitioner, N, UNIVERSE, 4, seed=0, skew=1.2
    )


def _params():
    return TrackingParams(num_sites=4, epsilon=0.05, universe_size=UNIVERSE)


def test_heavy_hitter_throughput(benchmark, stream):
    def run():
        protocol = HeavyHitterProtocol(_params())
        protocol.process_stream(stream)
        return protocol.stats.words

    words = benchmark.pedantic(run, rounds=3, iterations=1)
    assert words > 0


def test_quantile_throughput(benchmark, stream):
    def run():
        protocol = QuantileProtocol(_params(), phi=0.5)
        protocol.process_stream(stream)
        return protocol.stats.words

    words = benchmark.pedantic(run, rounds=3, iterations=1)
    assert words > 0


def test_all_quantiles_throughput(benchmark, stream):
    def run():
        protocol = AllQuantilesProtocol(_params())
        protocol.process_stream(stream)
        return protocol.stats.words

    words = benchmark.pedantic(run, rounds=2, iterations=1)
    assert words > 0


def test_spacesaving_insert_throughput(benchmark, stream):
    items = [item for _site, item in stream]

    def run():
        sketch = SpaceSavingSketch(0.01)
        for item in items:
            sketch.insert(item)
        return sketch.count

    assert benchmark.pedantic(run, rounds=3, iterations=1) == N


def test_gk_insert_throughput(benchmark, stream):
    items = [item for _site, item in stream][: N // 2]

    def run():
        sketch = GKQuantileSketch(0.01)
        for item in items:
            sketch.insert(item)
        return sketch.count

    assert benchmark.pedantic(run, rounds=3, iterations=1) == len(items)


def test_fenwick_update_throughput(benchmark, stream):
    items = [item for _site, item in stream]

    def run():
        tree = FenwickTree(UNIVERSE)
        for item in items:
            tree.add(item)
        return tree.total

    assert benchmark.pedantic(run, rounds=3, iterations=1) == N
