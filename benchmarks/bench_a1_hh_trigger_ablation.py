"""Benchmark A1 (ablation): trigger divisor cost/accuracy trade-off.

Regenerates the A1 table from DESIGN.md / EXPERIMENTS.md; run with
``pytest benchmarks/ --benchmark-only -s`` to see the table.
"""


def test_a1_hh_trigger_ablation(run_experiment_bench):
    result = run_experiment_bench("A1")
    assert result.experiment_id == "A1"
