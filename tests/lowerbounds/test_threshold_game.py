"""Threshold game tests: the Lemma 2.3 dichotomy."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigurationError
from repro.lowerbounds import (
    CheatingDetector,
    CorrectDetector,
    play_adversarial,
    play_spread,
)


class TestCorrectDetector:
    def test_threshold_sum_always_legal(self):
        """Sum of (n_j - 1) stays below the budget at all times."""
        detector = CorrectDetector(num_sites=8, budget=1000)
        for step in range(500):
            slack = sum(
                detector.threshold(site) - 1 for site in range(8)
            )
            assert slack < 1000 - step
            detector.deliver(step % 8, 1)

    def test_adversary_forces_omega_k(self):
        for k in (4, 16, 64):
            outcome = play_adversarial(CorrectDetector(k, 4096), 4096)
            assert outcome.messages >= k / 2, k

    def test_forced_messages_scale_linearly(self):
        messages = {
            k: play_adversarial(CorrectDetector(k, 4096), 4096).messages
            for k in (8, 32)
        }
        assert messages[32] >= 3 * messages[8]

    def test_always_detects(self):
        outcome = play_adversarial(CorrectDetector(4, 256), 256)
        assert outcome.change_detected

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            CorrectDetector(0, 10)
        with pytest.raises(ConfigurationError):
            CorrectDetector(4, 0)


class TestCheatingDetector:
    def test_misses_the_change(self):
        """Violating the sum constraint buys silence at the cost of
        correctness — the other horn of the dichotomy."""
        outcome = play_adversarial(CheatingDetector(8, 4096), 4096)
        assert outcome.messages == 0
        assert not outcome.change_detected

    def test_spread_also_silent(self):
        outcome = play_spread(CheatingDetector(8, 4096), 4096)
        assert outcome.messages == 0


class TestSpreadControl:
    def test_spread_pays_comparable_or_less(self):
        adversarial = play_adversarial(CorrectDetector(16, 4096), 4096)
        spread = play_spread(CorrectDetector(16, 4096), 4096)
        assert spread.messages <= adversarial.messages * 1.5
