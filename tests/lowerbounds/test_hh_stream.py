"""Lemma 2.2 construction tests."""

from __future__ import annotations

import math

import pytest

from repro.common.errors import ConfigurationError
from repro.lowerbounds import (
    count_heavy_hitter_changes,
    lemma22_epsilon,
    lemma22_stream,
)


class TestLemma22Epsilon:
    def test_consistent(self):
        epsilon = lemma22_epsilon(4, 0.13)
        assert abs(2 * 0.13 - 2 * epsilon - 1 / 4) < 1e-12
        assert 0 < epsilon < 0.13 / 3

    def test_rejects_out_of_range(self):
        with pytest.raises(ConfigurationError):
            lemma22_epsilon(2, 0.5)  # epsilon too large vs phi/3
        with pytest.raises(ConfigurationError):
            lemma22_epsilon(0, 0.1)


class TestStream:
    @pytest.fixture(scope="class")
    def built(self):
        return lemma22_stream(4, 0.13, 30_000)

    def test_reaches_target_length(self, built):
        items, _windows, _eps = built
        assert len(items) >= 30_000

    def test_universe_is_two_groups(self, built):
        items, _windows, _eps = built
        assert set(items) <= set(range(1, 9))

    def test_windows_cover_batches(self, built):
        items, windows, _eps = built
        for window in windows[:20]:
            segment = items[window.start_index : window.end_index]
            assert set(segment) == {window.item}

    def test_many_changes(self, built):
        """The construction must force Omega(log n / eps) changes."""
        items, windows, epsilon = built
        changes = count_heavy_hitter_changes(items, 0.13, epsilon)
        # At least one change per window for most windows.
        assert changes >= 0.5 * len(windows)
        # And the count is in the log(n)/eps ballpark.
        predicted = math.log(len(items)) / epsilon
        assert changes >= predicted / 40

    def test_changes_grow_with_n(self):
        short = lemma22_stream(4, 0.13, 8_000)
        long = lemma22_stream(4, 0.13, 64_000)
        changes_short = count_heavy_hitter_changes(short[0], 0.13, short[2])
        changes_long = count_heavy_hitter_changes(long[0], 0.13, long[2])
        assert changes_long > changes_short


class TestChangeCounter:
    def test_simple_transition(self):
        # 1 becomes heavy immediately; 2 never crosses phi.
        items = [1, 1, 1, 2]
        assert count_heavy_hitter_changes(items, phi=0.5, epsilon=0.1) == 1

    def test_oscillation_counted_once_per_crossing(self):
        # Item 1 heavy, diluted below phi-eps, then heavy again; item 2
        # crosses phi once in the middle. Three upward crossings total.
        items = [1] * 10 + [2] * 40 + [1] * 60
        changes = count_heavy_hitter_changes(items, phi=0.5, epsilon=0.2)
        assert changes == 3
