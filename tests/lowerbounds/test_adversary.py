"""Lemma 2.3 threshold-adversary tests: forcing Omega(k) messages."""

from __future__ import annotations

from repro.common.params import TrackingParams
from repro.core.heavy_hitters import HeavyHitterProtocol
from repro.lowerbounds import ThresholdAdversary


def warmed_protocol(k: int, epsilon: float = 0.02) -> HeavyHitterProtocol:
    params = TrackingParams(num_sites=k, epsilon=epsilon, universe_size=64)
    protocol = HeavyHitterProtocol(params)
    # Spread a background load so thresholds are realistic.
    for index in range(6 * params.warmup_items):
        protocol.process(index % k, 1 + index % 32)
    assert not protocol.in_warmup
    return protocol


class TestAdversary:
    def test_forces_messages_proportional_to_k(self):
        """The adversary's per-batch message count grows with k."""
        forced = {}
        for k in (4, 16):
            protocol = warmed_protocol(k)
            adversary = ThresholdAdversary(protocol)
            batch = max(64, protocol.items_processed // 10)
            outcome = adversary.deliver_batch(item=50, copies=batch)
            forced[k] = outcome.messages_triggered
        assert forced[16] > 2 * forced[4]

    def test_adversary_beats_round_robin(self):
        """Adversarial routing must cost at least as much as benign routing
        (it is a worst case) for the same number of copies."""
        protocol_a = warmed_protocol(8)
        protocol_b = warmed_protocol(8)
        batch = max(64, protocol_a.items_processed // 10)
        adversarial = ThresholdAdversary(protocol_a).deliver_batch(50, batch)
        control = ThresholdAdversary(protocol_b).deliver_round_robin(50, batch)
        assert adversarial.messages_triggered >= control.messages_triggered

    def test_forces_at_least_k_messages(self):
        """Lemma 2.3's conclusion: a transition batch costs Omega(k)."""
        k = 8
        protocol = warmed_protocol(k)
        adversary = ThresholdAdversary(protocol)
        batch = max(128, protocol.items_processed // 5)
        outcome = adversary.deliver_batch(item=50, copies=batch)
        assert outcome.messages_triggered >= k

    def test_outcome_accounting(self):
        protocol = warmed_protocol(4)
        adversary = ThresholdAdversary(protocol)
        outcome = adversary.deliver_batch(item=50, copies=10)
        assert outcome.deliveries == 10
        assert outcome.words_triggered >= outcome.messages_triggered
