"""§3.2 median lower-bound construction tests."""

from __future__ import annotations

import math

import pytest

from repro.common.errors import ConfigurationError
from repro.lowerbounds import count_median_changes, median_lower_bound_stream
from repro.lowerbounds.median_stream import HIGH_VALUE, LOW_VALUE


class TestConstruction:
    def test_two_values_only(self):
        items, _rounds = median_lower_bound_stream(0.02, 10_000)
        assert set(items) == {LOW_VALUE, HIGH_VALUE}
        assert len(items) >= 10_000

    def test_rounds_scale_with_log_n_over_eps(self):
        _items_a, rounds_a = median_lower_bound_stream(0.04, 20_000)
        _items_b, rounds_b = median_lower_bound_stream(0.02, 20_000)
        # Halving eps should roughly double the number of rounds.
        assert rounds_b > 1.4 * rounds_a

    def test_median_flips_every_round(self):
        items, rounds = median_lower_bound_stream(0.02, 20_000)
        changes = count_median_changes(items)
        assert changes >= rounds - 2

    def test_change_count_near_log_n_over_eps(self):
        epsilon = 0.02
        items, _rounds = median_lower_bound_stream(epsilon, 30_000)
        changes = count_median_changes(items)
        predicted = math.log(len(items)) / epsilon
        assert changes >= predicted / 40

    def test_invalid_epsilon(self):
        with pytest.raises(ConfigurationError):
            median_lower_bound_stream(0.2, 1000)
        with pytest.raises(ConfigurationError):
            median_lower_bound_stream(0, 1000)


class TestChangeCounter:
    def test_simple(self):
        items = [1, 1, 2, 2, 2]  # median flips from 1 to 2 at the end
        assert count_median_changes(items) == 1

    def test_no_changes(self):
        assert count_median_changes([1, 1, 1, 2]) == 0
