"""Experiment registry and result-rendering tests."""

from __future__ import annotations

import pytest

from repro.harness import ExperimentResult, run_experiment
from repro.harness.registry import EXPERIMENTS, experiment_ids


class TestRegistry:
    def test_all_experiments_registered(self):
        expected = [f"E{index}" for index in range(1, 14)]
        expected += [f"A{index}" for index in range(1, 4)]
        assert experiment_ids() == expected

    def test_ids_callable(self):
        for experiment_id, runner in EXPERIMENTS.items():
            assert callable(runner), experiment_id

    def test_unknown_experiment(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            run_experiment("E99")

    def test_case_insensitive(self):
        assert "E1" in EXPERIMENTS
        # run_experiment normalises case; just check lookup path.
        with pytest.raises(KeyError):
            run_experiment("e99")


class TestExperimentResult:
    def test_render_contains_claim_and_table(self):
        result = ExperimentResult(
            experiment_id="EX",
            title="demo",
            paper_claim="cost is low",
            headers=["n", "words"],
            rows=[[10, 20]],
            notes=["a note"],
        )
        rendered = result.render()
        assert "EX: demo" in rendered
        assert "cost is low" in rendered
        assert "20" in rendered
        assert "note: a note" in rendered
