"""Scaling-fit helper tests."""

from __future__ import annotations

import math

import pytest

from repro.harness.scaling import (
    doubling_ratios,
    fit_log_r2,
    fit_loglog_slope,
    linear_r2,
)


class TestFitLogLog:
    def test_linear_data(self):
        xs = [1, 2, 4, 8, 16]
        ys = [3 * x for x in xs]
        slope, r2 = fit_loglog_slope(xs, ys)
        assert abs(slope - 1) < 0.01
        assert r2 > 0.999

    def test_quadratic_data(self):
        xs = [1, 2, 4, 8]
        ys = [x * x for x in xs]
        slope, _r2 = fit_loglog_slope(xs, ys)
        assert abs(slope - 2) < 0.01

    def test_logarithmic_data_has_small_slope(self):
        xs = [10, 100, 1000, 10000]
        ys = [math.log(x) for x in xs]
        slope, _r2 = fit_loglog_slope(xs, ys)
        assert slope < 0.5

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            fit_loglog_slope([1], [1])


class TestFitLog:
    def test_log_data_fits_perfectly(self):
        xs = [10, 100, 1000]
        ys = [5 + 2 * math.log(x) for x in xs]
        b, r2 = fit_log_r2(xs, ys)
        assert abs(b - 2) < 1e-9
        assert r2 > 0.999


class TestLinear:
    def test_linear_fit(self):
        b, r2 = linear_r2([1, 2, 3], [2, 4, 6])
        assert abs(b - 2) < 1e-9
        assert r2 > 0.999

    def test_constant_data(self):
        _b, r2 = linear_r2([1, 2, 3], [5, 5, 5])
        assert r2 == 1.0


class TestDoublingRatios:
    def test_ratios(self):
        assert doubling_ratios([1, 2, 4]) == [2.0, 2.0]

    def test_skips_zero(self):
        assert doubling_ratios([0, 2, 4]) == [2.0]
