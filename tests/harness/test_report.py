"""Report formatting tests."""

from __future__ import annotations

from repro.harness.report import ascii_table, format_number


class TestFormatNumber:
    def test_ints_grouped(self):
        assert format_number(1234567) == "1,234,567"

    def test_floats_compact(self):
        assert format_number(0.123456) == "0.1235"
        assert format_number(12345.6) == "12,346"
        assert format_number(0.0) == "0"

    def test_passthrough(self):
        assert format_number("abc") == "abc"
        assert format_number(None) == "None"
        assert format_number(True) == "True"


class TestAsciiTable:
    def test_alignment(self):
        table = ascii_table(["a", "bbbb"], [[1, 2], [333, 4]])
        lines = table.splitlines()
        assert len(lines) == 4
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # all rows equal width

    def test_contains_values(self):
        table = ascii_table(["x"], [[42]])
        assert "42" in table
        assert "x" in table
