"""CLI tests."""

from __future__ import annotations

from repro.cli import build_parser, main


class TestParser:
    def test_defaults_to_list(self):
        args = build_parser().parse_args([])
        assert args.experiments == ["list"]
        assert not args.full

    def test_full_flag(self):
        args = build_parser().parse_args(["E1", "--full"])
        assert args.full
        assert args.experiments == ["E1"]


class TestMain:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "E1" in out
        assert "E12" in out
