"""Timeline recording and sparkline rendering tests."""

from __future__ import annotations

import pytest

from repro.common.params import TrackingParams
from repro.core.heavy_hitters import HeavyHitterProtocol
from repro.harness.timeline import (
    TimelinePoint,
    record_timeline,
    render_timeline,
    sparkline,
    words_per_interval,
)


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_all_zero(self):
        assert sparkline([0, 0]) == "  "

    def test_monotone_heights(self):
        line = sparkline([1, 2, 4, 8])
        assert len(line) == 4
        assert line[-1] == "█"

    def test_peak_is_full_bar(self):
        assert sparkline([5])[-1] == "█"


class TestRecordTimeline:
    @pytest.fixture
    def points(self, uniform_arrivals):
        params = TrackingParams(num_sites=4, epsilon=0.1, universe_size=1 << 12)
        protocol = HeavyHitterProtocol(params)
        return record_timeline(protocol, uniform_arrivals, samples=32)

    def test_point_count_and_monotonicity(self, points):
        assert len(points) >= 32
        words = [point.words for point in points]
        assert words == sorted(words)
        assert points[0] == TimelinePoint(0, 0, 0)

    def test_items_reach_stream_length(self, points, uniform_arrivals):
        assert points[-1].items == len(uniform_arrivals)

    def test_intervals_sum_to_total(self, points):
        assert sum(words_per_interval(points)) == points[-1].words

    def test_render(self, points):
        text = render_timeline(points)
        assert "words/interval" in text
        assert "total words" in text

    def test_invalid_samples(self):
        params = TrackingParams(num_sites=2, epsilon=0.5, universe_size=16)
        with pytest.raises(ValueError):
            record_timeline(HeavyHitterProtocol(params), [], samples=0)
