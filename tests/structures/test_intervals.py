"""Interval partition unit and property tests."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.structures.intervals import (
    IntervalPartition,
    equi_depth_separators,
)


class TestEquiDepthSeparators:
    def test_basic(self):
        values = list(range(1, 11))  # 1..10
        assert equi_depth_separators(values, 3) == [3, 6, 9]

    def test_bucket_larger_than_data(self):
        assert equi_depth_separators([1, 2], 5) == []

    def test_empty(self):
        assert equi_depth_separators([], 3) == []

    def test_bucket_one_returns_everything(self):
        assert equi_depth_separators([4, 8, 9], 1) == [4, 8, 9]

    def test_invalid_bucket(self):
        with pytest.raises(ValueError):
            equi_depth_separators([1], 0)

    def test_rank_recoverable_within_bucket(self):
        values = sorted([7, 3, 9, 1, 4, 4, 8, 2, 6, 5])
        bucket = 3
        separators = equi_depth_separators(values, bucket)
        for probe in range(0, 12):
            estimate = bucket * sum(1 for sep in separators if sep <= probe)
            exact = sum(1 for value in values if value <= probe)
            assert abs(estimate - exact) <= bucket


class TestIntervalPartition:
    def test_from_separators_structure(self):
        part = IntervalPartition.from_separators([10, 20, 30], universe_size=100)
        assert len(part) == 4
        assert part.boundaries() == [1, 11, 21, 31, 101]
        assert part.separators() == [10, 20, 30]

    def test_no_separators_single_interval(self):
        part = IntervalPartition.from_separators([], universe_size=50)
        assert len(part) == 1
        assert part.index_of(1) == 0
        assert part.index_of(50) == 0

    def test_dedup_and_out_of_range_separators(self):
        part = IntervalPartition.from_separators(
            [10, 10, 200, 20], universe_size=100
        )
        assert part.separators() == [10, 20]

    def test_separator_at_universe_max_ignored(self):
        part = IntervalPartition.from_separators([100], universe_size=100)
        # boundary 101 equals the final sentinel; no extra interval.
        assert len(part) == 1

    def test_index_of(self):
        part = IntervalPartition.from_separators([10, 20], universe_size=100)
        assert part.index_of(1) == 0
        assert part.index_of(10) == 0
        assert part.index_of(11) == 1
        assert part.index_of(20) == 1
        assert part.index_of(21) == 2
        assert part.index_of(100) == 2

    def test_index_of_out_of_universe(self):
        part = IntervalPartition.from_separators([10], universe_size=100)
        with pytest.raises(ValueError):
            part.index_of(0)
        with pytest.raises(ValueError):
            part.index_of(101)

    def test_counts(self):
        part = IntervalPartition.from_separators([10], universe_size=100)
        part.add_count(0, 5)
        part.set_count(1, 7)
        assert part.get_count(0) == 5
        assert part.total_count() == 12
        assert part.prefix_count(1) == 5

    def test_split(self):
        part = IntervalPartition.from_separators([20], universe_size=100)
        part.set_count(0, 10)
        part.split(0, separator=10, left_count=4, right_count=6)
        assert part.boundaries() == [1, 11, 21, 101]
        assert part.get_count(0) == 4
        assert part.get_count(1) == 6
        assert part.index_of(10) == 0
        assert part.index_of(11) == 1

    def test_split_rejects_degenerate_separator(self):
        part = IntervalPartition.from_separators([20], universe_size=100)
        with pytest.raises(ValueError):
            part.split(0, separator=20, left_count=1, right_count=1)  # = hi-1
        with pytest.raises(ValueError):
            part.split(0, separator=0, left_count=1, right_count=1)

    def test_iteration(self):
        part = IntervalPartition.from_separators([5], universe_size=10)
        intervals = list(part)
        assert [(iv.lo, iv.hi) for iv in intervals] == [(1, 6), (6, 11)]
        assert 5 in intervals[0]
        assert 6 not in intervals[0]


@settings(max_examples=100, deadline=None)
@given(
    separators=st.lists(
        st.integers(min_value=1, max_value=99), max_size=20, unique=True
    ),
    probes=st.lists(st.integers(min_value=1, max_value=100), min_size=1, max_size=20),
)
def test_partition_tiles_universe(separators, probes):
    """Every universe point belongs to exactly one interval."""
    part = IntervalPartition.from_separators(separators, universe_size=100)
    bounds = part.boundaries()
    assert bounds[0] == 1
    assert bounds[-1] == 101
    assert bounds == sorted(set(bounds))
    for probe in probes:
        index = part.index_of(probe)
        interval = part.interval(index)
        assert probe in interval
        hits = sum(1 for iv in part if probe in iv)
        assert hits == 1
