"""Fenwick tree unit and property tests."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import UniverseError
from repro.structures.fenwick import FenwickTree


class TestBasics:
    def test_empty_tree(self):
        tree = FenwickTree(16)
        assert tree.total == 0
        assert len(tree) == 0
        assert tree.prefix_sum(16) == 0

    def test_add_and_count(self):
        tree = FenwickTree(8)
        tree.add(3)
        tree.add(3)
        tree.add(7)
        assert tree.count(3) == 2
        assert tree.count(7) == 1
        assert tree.count(1) == 0
        assert tree.total == 3

    def test_prefix_sum(self):
        tree = FenwickTree(10)
        for item in [1, 5, 5, 9]:
            tree.add(item)
        assert tree.prefix_sum(0) == 0
        assert tree.prefix_sum(1) == 1
        assert tree.prefix_sum(4) == 1
        assert tree.prefix_sum(5) == 3
        assert tree.prefix_sum(10) == 4

    def test_prefix_sum_clamps_beyond_universe(self):
        tree = FenwickTree(4)
        tree.add(4)
        assert tree.prefix_sum(100) == 1

    def test_range_sum(self):
        tree = FenwickTree(10)
        for item in [2, 4, 4, 6, 8]:
            tree.add(item)
        assert tree.range_sum(4, 6) == 3
        assert tree.range_sum(5, 5) == 0
        assert tree.range_sum(9, 3) == 0

    def test_remove(self):
        tree = FenwickTree(8)
        tree.add(5, 3)
        tree.remove(5)
        assert tree.count(5) == 2
        assert tree.total == 2

    def test_weighted_add(self):
        tree = FenwickTree(8)
        tree.add(2, 10)
        assert tree.count(2) == 10
        tree.add(2, 0)  # no-op
        assert tree.total == 10

    def test_rank_is_strictly_less(self):
        tree = FenwickTree(8)
        tree.add(4, 2)
        assert tree.rank(4) == 0
        assert tree.rank(5) == 2

    def test_out_of_universe_rejected(self):
        tree = FenwickTree(8)
        with pytest.raises(UniverseError):
            tree.add(0)
        with pytest.raises(UniverseError):
            tree.add(9)

    def test_invalid_size_rejected(self):
        from repro.common.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            FenwickTree(0)


class TestSelect:
    def test_select_simple(self):
        tree = FenwickTree(16)
        for item in [3, 3, 7, 12]:
            tree.add(item)
        assert tree.select(1) == 3
        assert tree.select(2) == 3
        assert tree.select(3) == 7
        assert tree.select(4) == 12

    def test_select_out_of_range(self):
        tree = FenwickTree(4)
        tree.add(1)
        with pytest.raises(IndexError):
            tree.select(0)
        with pytest.raises(IndexError):
            tree.select(2)

    def test_quantile_median(self):
        tree = FenwickTree(100)
        for item in range(1, 12):  # 1..11, median 6
            tree.add(item)
        assert tree.quantile(0.5) == 6

    def test_quantile_extremes(self):
        tree = FenwickTree(100)
        for item in [10, 20, 30]:
            tree.add(item)
        assert tree.quantile(0.0) == 10
        assert tree.quantile(1.0) == 30

    def test_quantile_empty_raises(self):
        with pytest.raises(IndexError):
            FenwickTree(4).quantile(0.5)


@settings(max_examples=200, deadline=None)
@given(
    items=st.lists(st.integers(min_value=1, max_value=64), min_size=1, max_size=200)
)
def test_matches_brute_force(items):
    """Prefix sums, ranks, and selects all agree with a plain sorted list."""
    tree = FenwickTree(64)
    for item in items:
        tree.add(item)
    ordered = sorted(items)
    for probe in range(0, 66):
        expected = sum(1 for value in items if value <= probe)
        assert tree.prefix_sum(probe) == expected
    for rank in range(1, len(items) + 1):
        assert tree.select(rank) == ordered[rank - 1]


@settings(max_examples=100, deadline=None)
@given(
    items=st.lists(st.integers(min_value=1, max_value=64), min_size=1, max_size=100),
    phi=st.floats(min_value=0.0, max_value=1.0),
)
def test_quantile_definition(items, phi):
    """quantile(phi) satisfies the paper's two-sided quantile definition."""
    tree = FenwickTree(64)
    for item in items:
        tree.add(item)
    value = tree.quantile(phi)
    total = len(items)
    smaller = sum(1 for v in items if v < value)
    greater = sum(1 for v in items if v > value)
    assert smaller <= phi * total + 1e-9
    assert greater <= (1 - phi) * total + 1e-9
