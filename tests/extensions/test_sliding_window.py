"""Jumping-window extension tests (§5 open problem, relaxed)."""

from __future__ import annotations

import pytest

from repro.common.params import TrackingParams
from repro.extensions import JumpingWindowHeavyHitters, JumpingWindowQuantiles

UNIVERSE = 1 << 12
PARAMS = TrackingParams(num_sites=3, epsilon=0.1, universe_size=UNIVERSE)


class TestCoverage:
    def test_covered_stays_within_half_to_full_window(self):
        tracker = JumpingWindowHeavyHitters(window=1000, params=PARAMS)
        for index in range(5000):
            tracker.process(index % 3, 1 + index % 64)
            if index >= 1000:
                assert 500 <= tracker.covered <= 1000, f"at {index}"

    def test_invalid_window(self):
        with pytest.raises(Exception):
            JumpingWindowHeavyHitters(window=1, params=PARAMS)
        with pytest.raises(Exception):
            JumpingWindowHeavyHitters(window=0, params=PARAMS)


class TestExpiry:
    def test_old_heavy_hitter_expires(self):
        """An item that dominated long ago must drop out of the window view."""
        tracker = JumpingWindowHeavyHitters(window=2000, params=PARAMS)
        for index in range(2000):  # phase 1: item 7 dominates
            tracker.process(index % 3, 7 if index % 2 else 1 + index % 50)
        assert 7 in tracker.heavy_hitters(0.3)
        for index in range(5000):  # phase 2: item 7 disappears entirely
            tracker.process(index % 3, 100 + index % 50)
        assert 7 not in tracker.heavy_hitters(0.3)

    def test_recent_heavy_hitter_detected(self):
        tracker = JumpingWindowHeavyHitters(window=2000, params=PARAMS)
        for index in range(4000):  # background
            tracker.process(index % 3, 1 + index % 500)
        for index in range(3000):  # item 9 floods recent history
            tracker.process(index % 3, 9 if index % 2 else 1 + index % 500)
        assert 9 in tracker.heavy_hitters(0.3)


class TestWindowQuantiles:
    def test_quantile_follows_recent_distribution(self):
        tracker = JumpingWindowQuantiles(window=3000, params=PARAMS)
        for index in range(4000):  # old phase: low values
            tracker.process(index % 3, 1 + index % 100)
        for index in range(7000):  # new phase: high values
            tracker.process(index % 3, 3000 + index % 100)
        # The full-stream median would be ~mixed; the window median must
        # reflect only the recent high phase.
        assert tracker.quantile(0.5) >= 2900

    def test_rank_within_window(self):
        tracker = JumpingWindowQuantiles(window=2000, params=PARAMS)
        for index in range(6000):
            tracker.process(index % 3, 1 + index % 1000)
        covered = tracker.covered
        assert abs(tracker.rank(500) - covered / 2) <= 0.2 * covered


class TestAccounting:
    def test_total_words_positive_and_bounded(self):
        tracker = JumpingWindowHeavyHitters(window=1000, params=PARAMS)
        for index in range(3000):
            tracker.process(index % 3, 1 + index % 64)
        assert 0 < tracker.total_words < 2 * 2 * 3000  # < 2 instances naive
