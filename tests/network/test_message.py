"""Message sizing tests."""

from __future__ import annotations

import pytest

from repro.network.message import Message, payload_words


class TestPayloadWords:
    def test_scalars(self):
        assert payload_words(None) == 0
        assert payload_words(5) == 1
        assert payload_words(2.5) == 1
        assert payload_words("all") == 1

    def test_sequences(self):
        assert payload_words([1, 2, 3]) == 3
        assert payload_words((1, [2, 3])) == 3
        assert payload_words([]) == 0

    def test_mapping(self):
        assert payload_words({1: 2, 3: [4, 5]}) == 1 + 1 + 1 + 2

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            payload_words(object())


class TestMessage:
    def test_default_words(self):
        assert Message("kind").words == 1
        assert Message("kind", 7).words == 2
        assert Message("kind", (1, 2, 3)).words == 4

    def test_explicit_words_override(self):
        assert Message("kind", [1, 2], words=10).words == 10

    def test_frozen(self):
        message = Message("kind", 1)
        with pytest.raises(AttributeError):
            message.kind = "other"
