"""Network runtime tests: delivery, charging, cascades."""

from __future__ import annotations

import pytest

from repro.common.errors import CommunicationError
from repro.network.message import Message
from repro.network.protocol import Coordinator, Site
from repro.network.runtime import Network


class EchoSite(Site):
    """Records pushes; answers requests with its id."""

    def __init__(self, site_id, network):
        super().__init__(site_id, network)
        self.received: list[Message] = []

    def observe(self, item: int) -> None:
        self.send(Message("obs", item))

    def on_message(self, message: Message) -> None:
        self.received.append(message)

    def on_request(self, message: Message) -> Message:
        return Message("reply", self.site_id)


class RecordingCoordinator(Coordinator):
    def __init__(self, network):
        super().__init__(network)
        self.received: list[tuple[int, Message]] = []

    def on_message(self, site_id: int, message: Message) -> None:
        self.received.append((site_id, message))


@pytest.fixture
def net():
    network = Network(3)
    coordinator = RecordingCoordinator(network)
    sites = [EchoSite(index, network) for index in range(3)]
    network.bind(coordinator, sites)
    return network, coordinator, sites


class TestDelivery:
    def test_uplink(self, net):
        network, coordinator, sites = net
        sites[1].observe(42)
        assert coordinator.received == [(1, Message("obs", 42))]
        assert network.stats.uplink_messages == 1
        assert network.stats.uplink_words == 2

    def test_downlink(self, net):
        network, _coordinator, sites = net
        network.send_to_site(2, Message("hello", None))
        assert sites[2].received[0].kind == "hello"
        assert network.stats.downlink_messages == 1

    def test_broadcast_charges_k(self, net):
        network, _coordinator, sites = net
        network.broadcast(Message("cfg", 9))
        assert all(site.received for site in sites)
        assert network.stats.downlink_messages == 3
        assert network.stats.downlink_words == 6

    def test_request_charges_both_directions(self, net):
        network, _coordinator, _sites = net
        reply = network.request(0, Message("ask", None))
        assert reply.payload == 0
        assert network.stats.downlink_messages == 1
        assert network.stats.uplink_messages == 1

    def test_request_all_in_site_order(self, net):
        network, _coordinator, _sites = net
        replies = network.request_all(Message("ask", None))
        assert [reply.payload for reply in replies] == [0, 1, 2]
        assert network.stats.messages == 6


class TestErrors:
    def test_unbound_network_rejects_traffic(self):
        network = Network(2)
        with pytest.raises(CommunicationError):
            network.send_to_coordinator(0, Message("x"))

    def test_unknown_site(self, net):
        network, _coordinator, _sites = net
        with pytest.raises(CommunicationError):
            network.send_to_site(7, Message("x"))

    def test_bad_site_count_at_bind(self):
        network = Network(2)
        coordinator = RecordingCoordinator(network)
        with pytest.raises(CommunicationError):
            network.bind(coordinator, [EchoSite(0, network)])

    def test_zero_sites_rejected(self):
        with pytest.raises(CommunicationError):
            Network(0)

    def test_default_handlers_reject_unknown(self, net):
        network, _coordinator, _sites = net

        class StrictSite(Site):
            def observe(self, item):
                pass

        strict = StrictSite(0, network)
        from repro.common.errors import ProtocolError

        with pytest.raises(ProtocolError):
            strict.on_message(Message("weird"))
        with pytest.raises(ProtocolError):
            strict.on_request(Message("weird"))
