"""ContinuousTrackingProtocol facade tests (warm-up handling)."""

from __future__ import annotations

import pytest

from repro.common.errors import ProtocolError, UniverseError
from repro.common.params import TrackingParams
from repro.network.message import Message
from repro.network.protocol import (
    ContinuousTrackingProtocol,
    Coordinator,
    Site,
)


class _NullSite(Site):
    def __init__(self, site_id, network):
        super().__init__(site_id, network)
        self.observed: list[int] = []

    def observe(self, item: int) -> None:
        self.observed.append(item)


class _NullCoordinator(Coordinator):
    def on_message(self, site_id: int, message: Message) -> None:
        pass


class MiniProtocol(ContinuousTrackingProtocol):
    """Minimal concrete protocol recording its initialization."""

    def _build(self) -> None:
        self._sites = [
            _NullSite(index, self.network)
            for index in range(self.params.num_sites)
        ]
        self._coordinator = _NullCoordinator(self.network)
        self.network.bind(self._coordinator, self._sites)
        self.init_snapshot = None

    def _site(self, site_id):
        return self._sites[site_id]

    def _initialize(self, per_site_items):
        self.init_snapshot = [list(items) for items in per_site_items]


@pytest.fixture
def protocol():
    return MiniProtocol(
        TrackingParams(num_sites=2, epsilon=0.5, universe_size=100)
    )


class TestWarmup:
    def test_warmup_length(self, protocol):
        assert protocol.params.warmup_items == 4
        for index in range(3):
            protocol.process(index % 2, index + 1)
        assert protocol.in_warmup
        protocol.process(1, 50)
        assert not protocol.in_warmup

    def test_warmup_forwards_and_charges(self, protocol):
        protocol.process(0, 9)
        assert protocol.stats.uplink_words == 2
        assert protocol.stats.by_kind["warmup"] == 1

    def test_initialize_receives_per_site_items(self, protocol):
        arrivals = [(0, 1), (1, 2), (0, 3), (1, 4)]
        protocol.process_stream(arrivals)
        assert protocol.init_snapshot == [[1, 3], [2, 4]]

    def test_post_warmup_items_go_to_sites(self, protocol):
        protocol.process_stream([(0, 1), (1, 2), (0, 3), (1, 4)])
        protocol.process(0, 77)
        assert protocol._sites[0].observed == [77]

    def test_items_processed(self, protocol):
        protocol.process_stream([(0, 1), (1, 2)])
        assert protocol.items_processed == 2


class TestValidation:
    def test_rejects_out_of_universe(self, protocol):
        with pytest.raises(UniverseError):
            protocol.process(0, 0)
        with pytest.raises(UniverseError):
            protocol.process(0, 101)

    def test_rejects_unknown_site(self, protocol):
        with pytest.raises(ProtocolError):
            protocol.process(5, 1)
