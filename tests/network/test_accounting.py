"""Communication ledger tests."""

from __future__ import annotations

from repro.network.accounting import CommStats


class TestCommStats:
    def test_initial_state(self):
        stats = CommStats()
        assert stats.messages == 0
        assert stats.words == 0

    def test_charging(self):
        stats = CommStats()
        stats.charge_uplink("a", 3)
        stats.charge_downlink("b", 2)
        stats.charge_uplink("a", 1)
        assert stats.uplink_messages == 2
        assert stats.downlink_messages == 1
        assert stats.words == 6
        assert stats.by_kind["a"] == 2
        assert stats.words_by_kind["a"] == 4

    def test_snapshot_is_frozen_copy(self):
        stats = CommStats()
        stats.charge_uplink("a", 5)
        snap = stats.snapshot()
        stats.charge_uplink("a", 5)
        assert snap.words == 5
        assert stats.words == 10

    def test_snapshot_subtraction(self):
        stats = CommStats()
        stats.charge_uplink("a", 5)
        before = stats.snapshot()
        stats.charge_downlink("b", 7)
        stats.charge_uplink("a", 2)
        delta = stats.snapshot() - before
        assert delta.messages == 2
        assert delta.words == 9
        assert delta.uplink_words == 2
        assert delta.downlink_words == 7
