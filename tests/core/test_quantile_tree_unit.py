"""Unit tests for the Figure-1 tree structure itself."""

from __future__ import annotations

import pytest

from repro.common.errors import ProtocolError
from repro.core.all_quantiles.tree import QuantileTree, TreeNode, height_bound


def build_small_tree() -> QuantileTree:
    """[1,9) split at 4: left [1,5), right [5,9); right split at 6."""
    tree = QuantileTree(universe_size=8)
    tree.add_node(TreeNode(node_id=0, lo=1, hi=9, left=1, right=2))
    tree.add_node(TreeNode(node_id=1, lo=1, hi=5, parent=0, su=4))
    tree.add_node(TreeNode(node_id=2, lo=5, hi=9, parent=0, left=3, right=4))
    tree.add_node(TreeNode(node_id=3, lo=5, hi=7, parent=2, su=3))
    tree.add_node(TreeNode(node_id=4, lo=7, hi=9, parent=2, su=1))
    tree.root_id = 0
    tree.node(0).su = 8
    tree.node(2).su = 4
    tree._next_id = 5
    return tree


class TestStructure:
    def test_check_structure_passes(self):
        build_small_tree().check_structure()

    def test_check_structure_catches_bad_tiling(self):
        tree = build_small_tree()
        tree.node(1).hi = 4  # gap between left child and right child
        with pytest.raises(ProtocolError):
            tree.check_structure()

    def test_leaf_for(self):
        tree = build_small_tree()
        assert tree.leaf_for(1).node_id == 1
        assert tree.leaf_for(4).node_id == 1
        assert tree.leaf_for(5).node_id == 3
        assert tree.leaf_for(8).node_id == 4

    def test_path_to(self):
        tree = build_small_tree()
        assert tree.path_to(4) == [0, 2, 4]
        assert tree.path_to(0) == [0]

    def test_path_to_detached_node_raises(self):
        tree = build_small_tree()
        tree.add_node(TreeNode(node_id=9, lo=1, hi=2, parent=7))
        tree.add_node(TreeNode(node_id=7, lo=1, hi=3, parent=-1))
        with pytest.raises(ProtocolError):
            tree.path_to(9)

    def test_preorder(self):
        tree = build_small_tree()
        assert tree.preorder() == [0, 1, 2, 3, 4]
        assert tree.preorder(2) == [2, 3, 4]

    def test_leaves_left_to_right(self):
        tree = build_small_tree()
        assert [leaf.node_id for leaf in tree.leaves()] == [1, 3, 4]

    def test_height(self):
        assert build_small_tree().height() == 2

    def test_remove_subtree(self):
        tree = build_small_tree()
        removed = tree.remove_subtree(2)
        assert sorted(removed) == [2, 3, 4]
        assert 2 not in tree.nodes
        assert tree.preorder() == [0, 1]

    def test_fresh_ids_never_reused(self):
        tree = build_small_tree()
        first = tree.fresh_id()
        tree.remove_subtree(tree.root_id)
        assert tree.fresh_id() > first

    def test_unknown_node_raises(self):
        with pytest.raises(ProtocolError):
            build_small_tree().node(99)


class TestQueries:
    def test_estimate_rank(self):
        tree = build_small_tree()
        assert tree.estimate_rank(0) == 0
        # Inside the left leaf: midpoint of its count.
        assert tree.estimate_rank(2) == 4 // 2
        # Leaf maximum counts the full leaf.
        assert tree.estimate_rank(4) == 4
        assert tree.estimate_rank(8) == 8
        assert tree.estimate_rank(100) == 8

    def test_estimate_quantile(self):
        tree = build_small_tree()
        # target rank 3.2 of 8 lands in the left leaf [1,5) (4 items);
        # interpolation at fraction 0.8 of the value range gives 3.
        assert tree.estimate_quantile(0.4) == 3
        # target 7.92 lands in the right leaf [7,9); interpolation floors
        # to value 7 (both 7 and 8 satisfy the rank contract).
        assert tree.estimate_quantile(0.99) == 7

    def test_empty_tree_quantile_raises(self):
        tree = build_small_tree()
        for node in tree.nodes.values():
            node.su = 0
        with pytest.raises(IndexError):
            tree.estimate_quantile(0.5)


class TestHeightBound:
    def test_monotone_in_one_over_eps(self):
        assert height_bound(0.01) >= height_bound(0.1) >= 8

    def test_floor(self):
        assert height_bound(0.5) == 8
