"""Ablation knobs: the configurable constants behave monotonically."""

from __future__ import annotations

from repro.common.params import TrackingParams
from repro.core.all_quantiles import AllQuantilesProtocol
from repro.core.heavy_hitters import HeavyHitterProtocol
from repro.core.quantile import QuantileProtocol

UNIVERSE = 1 << 11


def _stream(n=5000, k=4):
    return [(index % k, 1 + (index * 7919) % UNIVERSE) for index in range(n)]


class TestHeavyHitterTriggerDivisor:
    def test_lazier_trigger_sends_less(self):
        params = TrackingParams(num_sites=4, epsilon=0.1, universe_size=UNIVERSE)
        words = {}
        for divisor in (1, 6):
            protocol = HeavyHitterProtocol(params, trigger_divisor=divisor)
            protocol.process_stream(_stream())
            words[divisor] = protocol.stats.words
        assert words[1] < words[6]

    def test_lazier_trigger_weakens_invariant(self):
        """With divisor d the estimate error bound is eps*m/d."""
        params = TrackingParams(num_sites=4, epsilon=0.1, universe_size=UNIVERSE)
        protocol = HeavyHitterProtocol(params, trigger_divisor=6)
        stream = _stream()
        protocol.process_stream(stream)
        n = len(stream)
        # Eager divisor: total estimate within eps*m/6.
        assert n - protocol.estimated_total <= 0.1 * n / 6 + 1


class TestQuantileUpdateFraction:
    def test_lazier_recenters_fewer_times(self):
        params = TrackingParams(num_sites=4, epsilon=0.1, universe_size=UNIVERSE)
        recenters = {}
        for fraction in (0.25, 1.0):
            protocol = QuantileProtocol(
                params, phi=0.5, update_fraction=fraction
            )
            protocol.process_stream(_stream())
            recenters[fraction] = protocol.recenters
        assert recenters[1.0] <= recenters[0.25]


class TestAllQuantilesThetaScale:
    def test_larger_theta_sends_fewer_count_updates(self):
        params = TrackingParams(num_sites=4, epsilon=0.1, universe_size=UNIVERSE)
        counts = {}
        for scale in (0.5, 4.0):
            protocol = AllQuantilesProtocol(params, theta_scale=scale)
            protocol.process_stream(_stream())
            counts[scale] = protocol.stats.by_kind["aq.count"]
        assert counts[4.0] < counts[0.5]
