"""Direct unit tests of the §2.1 coordinator's message handling."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.common.params import TrackingParams
from repro.core.heavy_hitters.coordinator import HeavyHitterCoordinator
from repro.core.heavy_hitters.site import (
    MSG_ALL,
    MSG_ITEM,
    HeavyHitterSite,
)
from repro.network.message import Message
from repro.network.runtime import Network


@pytest.fixture
def setup():
    params = TrackingParams(num_sites=3, epsilon=0.3, universe_size=64)
    network = Network(3)
    sites = [HeavyHitterSite(i, network, params) for i in range(3)]
    coordinator = HeavyHitterCoordinator(network, params)
    network.bind(coordinator, sites)
    for site in sites:
        site.bootstrap([1, 2, 3], 9)
    coordinator.bootstrap(Counter({1: 3, 2: 3, 3: 3}), 9)
    return params, network, coordinator, sites


class TestMessageHandling:
    def test_item_message_accumulates(self, setup):
        _params, _network, coordinator, _sites = setup
        coordinator.on_message(0, Message(MSG_ITEM, (7, 5)))
        coordinator.on_message(1, Message(MSG_ITEM, (7, 2)))
        assert coordinator.item_estimates[7] == 7

    def test_all_message_accumulates(self, setup):
        _params, _network, coordinator, _sites = setup
        before = coordinator.global_estimate
        coordinator.on_message(0, Message(MSG_ALL, 4))
        assert coordinator.global_estimate == before + 4

    def test_k_all_signals_trigger_sync(self, setup):
        _params, _network, coordinator, sites = setup
        for site in sites:
            site.local_total = 100  # pretend growth happened
        for site_id in range(3):
            coordinator.on_message(site_id, Message(MSG_ALL, 1))
        # Synchronisation collected exact counts and broadcast them.
        assert coordinator.global_estimate == 300
        assert coordinator.rounds_completed == 1
        for site in sites:
            assert site.global_estimate == 300
            assert site.delta_total == 0

    def test_unknown_kind_rejected(self, setup):
        _params, _network, coordinator, _sites = setup
        with pytest.raises(ValueError):
            coordinator.on_message(0, Message("bogus"))


class TestClassification:
    def test_margin_applied(self, setup):
        _params, _network, coordinator, _sites = setup
        # Estimates: items 1..3 at 3/9 each.
        assert 1 in coordinator.classify(phi=0.33, margin=0.0)
        assert 1 not in coordinator.classify(phi=0.34, margin=0.0)
        assert 1 in coordinator.classify(phi=0.34, margin=-0.05)

    def test_empty_when_no_items(self):
        params = TrackingParams(num_sites=2, epsilon=0.2, universe_size=8)
        network = Network(2)
        coordinator = HeavyHitterCoordinator(network, params)
        assert coordinator.classify(0.5, 0.0) == {}
