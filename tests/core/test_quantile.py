"""Single-quantile protocol (§3.1) tests."""

from __future__ import annotations

import pytest

from repro.common.params import TrackingParams
from repro.core.quantile import QuantileProtocol
from repro.oracle import ExactTracker, audit_quantile_protocol
from repro.workloads import (
    make_stream,
    round_robin_partitioner,
    shifting_stream,
    skewed_partitioner,
    uniform_stream,
)

UNIVERSE = 1 << 12


class TestMedianGuarantee:
    def test_median_always_within_eps(self, uniform_arrivals, tight_params):
        protocol = QuantileProtocol(tight_params, phi=0.5)
        report = audit_quantile_protocol(
            protocol, uniform_arrivals, checkpoint_every=200
        )
        assert report.ok, report.violations[:3]
        assert report.max_error <= tight_params.epsilon

    def test_shifting_distribution(self, tight_params):
        stream = make_stream(
            shifting_stream, round_robin_partitioner, 8_000, UNIVERSE, 4, seed=9
        )
        protocol = QuantileProtocol(tight_params, phi=0.5)
        report = audit_quantile_protocol(protocol, stream, checkpoint_every=200)
        assert report.ok, report.violations[:3]

    def test_skewed_site_assignment(self, tight_params):
        stream = make_stream(
            uniform_stream, skewed_partitioner, 8_000, UNIVERSE, 4, seed=10
        )
        protocol = QuantileProtocol(tight_params, phi=0.5)
        report = audit_quantile_protocol(protocol, stream, checkpoint_every=200)
        assert report.ok, report.violations[:3]


class TestOtherQuantiles:
    @pytest.mark.parametrize("phi", [0.1, 0.25, 0.75, 0.95])
    def test_arbitrary_phi(self, phi, uniform_arrivals, tight_params):
        protocol = QuantileProtocol(tight_params, phi=phi)
        report = audit_quantile_protocol(
            protocol, uniform_arrivals, checkpoint_every=400
        )
        assert report.ok, report.violations[:3]

    def test_invalid_phi_rejected(self, params):
        from repro.common.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            QuantileProtocol(params, phi=1.5)


class TestDegenerateStreams:
    def test_two_value_universe(self):
        """The §3.2 lower-bound regime: only two distinct values, with the
        majority flipping — the tracked median must follow."""
        params = TrackingParams(num_sites=2, epsilon=0.05, universe_size=4)
        protocol = QuantileProtocol(params, phi=0.5)
        oracle = ExactTracker(4)
        arrivals = [1] * 600 + [2] * 1400 + [1] * 2000
        for index, item in enumerate(arrivals):
            protocol.process(index % 2, item)
            oracle.update(item)
            if not protocol.in_warmup and index % 100 == 0:
                offset = oracle.quantile_rank_offset(protocol.quantile(), 0.5)
                assert offset <= params.epsilon, f"at index {index}"

    def test_all_items_identical(self):
        params = TrackingParams(num_sites=2, epsilon=0.1, universe_size=64)
        protocol = QuantileProtocol(params, phi=0.5)
        for index in range(2000):
            protocol.process(index % 2, 33)
        assert protocol.quantile() == 33

    def test_sorted_arrivals(self, tight_params):
        """Monotone increasing values keep dragging the median right."""
        protocol = QuantileProtocol(tight_params, phi=0.5)
        oracle = ExactTracker(UNIVERSE)
        for index in range(6000):
            item = (index % UNIVERSE) + 1
            protocol.process(index % 4, item)
            oracle.update(item)
        offset = oracle.quantile_rank_offset(protocol.quantile(), 0.5)
        assert offset <= tight_params.epsilon


class TestMechanics:
    def test_rounds_follow_doubling(self, uniform_arrivals, params):
        protocol = QuantileProtocol(params, phi=0.5)
        protocol.process_stream(uniform_arrivals)
        n = len(uniform_arrivals)
        import math

        doublings = math.log2(n / params.warmup_items)
        assert protocol.rounds_completed >= doublings - 1
        assert protocol.rounds_completed <= 2 * doublings + 3

    def test_estimated_total_tracks_n(self, uniform_arrivals, params):
        protocol = QuantileProtocol(params, phi=0.5)
        protocol.process_stream(uniform_arrivals)
        n = len(uniform_arrivals)
        assert abs(protocol.estimated_total - n) <= params.epsilon * n

    def test_splits_bounded_per_round(self, uniform_arrivals, params):
        protocol = QuantileProtocol(params, phi=0.5)
        protocol.process_stream(uniform_arrivals)
        rounds = max(1, protocol.rounds_completed)
        # O(1/eps) splits per round with a generous constant.
        assert protocol.splits / rounds <= 32 / params.epsilon

    def test_quantile_during_warmup(self):
        params = TrackingParams(num_sites=2, epsilon=0.5, universe_size=64)
        protocol = QuantileProtocol(params, phi=0.5)
        protocol.process(0, 10)
        protocol.process(1, 20)
        assert protocol.in_warmup
        assert protocol.quantile() in (10, 20)

    def test_quantile_before_any_item_raises(self):
        params = TrackingParams(num_sites=2, epsilon=0.5, universe_size=64)
        protocol = QuantileProtocol(params, phi=0.5)
        with pytest.raises(IndexError):
            protocol.quantile()


class TestSketchVariant:
    def test_gk_sites_track_median(self, uniform_arrivals, params):
        protocol = QuantileProtocol(params, phi=0.5, use_sketch_sites=True)
        oracle = ExactTracker(UNIVERSE)
        for site_id, item in uniform_arrivals:
            protocol.process(site_id, item)
            oracle.update(item)
        # Sketch variant trades constants: allow 2x epsilon.
        offset = oracle.quantile_rank_offset(protocol.quantile(), 0.5)
        assert offset <= 2 * params.epsilon

    def test_gk_sites_use_less_space(self, uniform_arrivals, params):
        protocol = QuantileProtocol(params, phi=0.5, use_sketch_sites=True)
        protocol.process_stream(uniform_arrivals)
        for site in protocol._sites:
            assert site.sketch.tuple_count < site.local_total
