"""Local store tests: exact store correctness, GK store approximation."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.localstore import ExactLocalStore, GKLocalStore


class TestExactLocalStore:
    def test_counts(self):
        store = ExactLocalStore([5, 1, 9, 5])
        assert store.total == 4
        assert store.count_less(5) == 1
        assert store.count_leq(5) == 3
        assert store.range_count(2, 6) == 2

    def test_insert(self):
        store = ExactLocalStore()
        store.insert(3)
        store.insert(1)
        assert store.count_leq(3) == 2

    def test_summary(self):
        store = ExactLocalStore(list(range(1, 13)))
        count, bucket, separators = store.summary(1, 13, bucket=3)
        assert count == 12
        assert bucket == 3
        assert separators == [3, 6, 9, 12]

    def test_summary_empty_range(self):
        store = ExactLocalStore([100])
        assert store.summary(1, 50, bucket=4) == (0, 1, [])

    def test_summary_bucket_floor(self):
        store = ExactLocalStore([1, 2, 3])
        count, bucket, separators = store.summary(1, 10, bucket=0)
        assert bucket == 1
        assert separators == [1, 2, 3]


class TestGKLocalStore:
    def test_tracks_total_exactly(self):
        store = GKLocalStore(0.1, items=[1, 2, 3])
        assert store.total == 3

    def test_summary_shape(self):
        store = GKLocalStore(0.05, items=list(range(1, 201)))
        count, bucket, separators = store.summary(1, 201, bucket=25)
        assert abs(count - 200) <= 0.05 * 200 * 2
        assert separators == sorted(separators)
        # Separators cover the range at roughly bucket spacing.
        assert 4 <= len(separators) <= 12

    def test_summary_rank_reconstruction(self):
        store = GKLocalStore(0.02, items=list(range(1, 401)))
        count, bucket, separators = store.summary(1, 401, bucket=40)
        for probe in (50, 150, 350):
            estimate = bucket * sum(1 for sep in separators if sep <= probe)
            assert abs(estimate - probe) <= 2 * bucket + 0.02 * 400


@settings(max_examples=60, deadline=None)
@given(
    items=st.lists(
        st.integers(min_value=1, max_value=500), min_size=10, max_size=300
    )
)
def test_gk_store_approximates_exact(items):
    """GK store's rank answers stay within eps*n of the exact store's."""
    epsilon = 0.1
    exact = ExactLocalStore(items)
    approx = GKLocalStore(epsilon, items)
    n = len(items)
    for probe in [1, 100, 250, 400, 500]:
        assert abs(approx.count_leq(probe) - exact.count_leq(probe)) <= (
            epsilon * n + 1
        )
