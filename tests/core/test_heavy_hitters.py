"""Heavy-hitter protocol (§2.1) tests: invariants, guarantees, cost shape."""

from __future__ import annotations

import math
from collections import Counter

import pytest

from repro.common.params import TrackingParams
from repro.core.heavy_hitters import HeavyHitterProtocol
from repro.oracle import ExactTracker, audit_heavy_hitter_protocol

UNIVERSE = 1 << 12


def run_with_oracle(protocol, arrivals):
    oracle = ExactTracker(protocol.params.universe_size)
    for site_id, item in arrivals:
        protocol.process(site_id, item)
        oracle.update(item)
    return oracle


class TestInvariants:
    """The paper's invariants (2) and (3): estimates are underestimates
    within eps*m/3."""

    def test_estimates_are_bounded_underestimates(self, planted_heavy_arrivals):
        params = TrackingParams(num_sites=4, epsilon=0.1, universe_size=UNIVERSE)
        protocol = HeavyHitterProtocol(params)
        oracle = run_with_oracle(protocol, planted_heavy_arrivals)
        m = oracle.total
        assert protocol.estimated_total <= m
        assert protocol.estimated_total >= m - params.epsilon * m / 3
        for item, estimate in protocol.estimated_frequencies().items():
            true = oracle.frequency(item)
            assert estimate <= true
            assert estimate >= true - params.epsilon * m / 3

    def test_invariants_hold_at_every_step(self):
        params = TrackingParams(num_sites=3, epsilon=0.2, universe_size=64)
        protocol = HeavyHitterProtocol(params)
        oracle = ExactTracker(64)
        import numpy as np

        rng = np.random.default_rng(5)
        for index in range(3000):
            item = int(rng.integers(1, 17))
            protocol.process(index % 3, item)
            oracle.update(item)
            if protocol.in_warmup:
                continue
            m = oracle.total
            assert protocol.estimated_total <= m
            assert protocol.estimated_total >= m - params.epsilon * m / 3


class TestGuarantee:
    def test_no_false_negatives_or_positives(self, planted_heavy_arrivals):
        params = TrackingParams(num_sites=4, epsilon=0.05, universe_size=UNIVERSE)
        protocol = HeavyHitterProtocol(params)
        report = audit_heavy_hitter_protocol(
            protocol, planted_heavy_arrivals, phi=0.1, checkpoint_every=250
        )
        assert report.ok, report.violations
        assert report.checkpoints > 20

    def test_planted_hitters_found(self, planted_heavy_arrivals):
        params = TrackingParams(num_sites=4, epsilon=0.05, universe_size=UNIVERSE)
        protocol = HeavyHitterProtocol(params)
        protocol.process_stream(planted_heavy_arrivals)
        hitters = protocol.heavy_hitters(0.1)
        assert 17 in hitters  # planted at 20%
        assert 1000 in hitters  # planted at 12%

    def test_query_during_warmup_is_exact(self):
        params = TrackingParams(num_sites=2, epsilon=0.1, universe_size=64)
        protocol = HeavyHitterProtocol(params)
        for _ in range(5):
            protocol.process(0, 7)
        protocol.process(1, 9)
        assert protocol.in_warmup
        assert 7 in protocol.heavy_hitters(0.5)
        assert 9 not in protocol.heavy_hitters(0.5)

    def test_phi_must_exceed_epsilon(self, params):
        protocol = HeavyHitterProtocol(params)
        from repro.common.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            protocol.heavy_hitters(0.05)  # phi <= eps=0.1


class TestCostShape:
    def test_cost_grows_logarithmically_in_n(self):
        """Doubling n adds a roughly constant number of words."""
        words = []
        for n in [4_000, 8_000, 16_000]:
            params = TrackingParams(
                num_sites=4, epsilon=0.1, universe_size=UNIVERSE
            )
            protocol = HeavyHitterProtocol(params)
            import numpy as np

            rng = np.random.default_rng(0)
            items = rng.zipf(1.4, size=n)
            items = np.minimum(items, UNIVERSE)
            for index, item in enumerate(items):
                protocol.process(index % 4, int(item))
            words.append(protocol.stats.words)
        increments = [words[1] - words[0], words[2] - words[1]]
        # Log growth: increments comparable, far below doubling.
        assert words[2] < 1.8 * words[1]
        assert increments[1] < 2.5 * max(1, increments[0])

    def test_round_count_matches_theory(self, zipf_arrivals):
        """Rounds ~ log_{1+eps/3}(n / warmup)."""
        params = TrackingParams(num_sites=4, epsilon=0.2, universe_size=UNIVERSE)
        protocol = HeavyHitterProtocol(params)
        protocol.process_stream(zipf_arrivals)
        n = len(zipf_arrivals)
        predicted = math.log(n / params.warmup_items) / math.log(
            1 + params.epsilon / 3
        )
        assert 0.3 * predicted <= protocol.rounds_completed <= 2.5 * predicted


class TestSketchVariant:
    def test_sketch_sites_still_correct(self, planted_heavy_arrivals):
        params = TrackingParams(num_sites=4, epsilon=0.05, universe_size=UNIVERSE)
        protocol = HeavyHitterProtocol(params, use_sketch_sites=True)
        protocol.process_stream(planted_heavy_arrivals)
        hitters = protocol.heavy_hitters(0.1)
        assert 17 in hitters
        assert 1000 in hitters
        oracle = ExactTracker(UNIVERSE)
        for _site, item in planted_heavy_arrivals:
            oracle.update(item)
        for item in hitters:
            assert oracle.frequency(item) >= (0.1 - params.epsilon) * oracle.total

    def test_sketch_sites_bound_space(self, zipf_arrivals):
        params = TrackingParams(num_sites=4, epsilon=0.1, universe_size=UNIVERSE)
        protocol = HeavyHitterProtocol(params, use_sketch_sites=True)
        protocol.process_stream(zipf_arrivals)
        for site in protocol._sites:
            assert len(site.sketch.items()) <= site.sketch.capacity


class TestAdversaryHook:
    def test_threshold_positive_and_honest(self, zipf_arrivals):
        """Sending exactly the reported threshold forces a message."""
        params = TrackingParams(num_sites=4, epsilon=0.1, universe_size=UNIVERSE)
        protocol = HeavyHitterProtocol(params)
        protocol.process_stream(zipf_arrivals)
        item = 33
        threshold = protocol.site_trigger_threshold(0, item)
        assert threshold >= 1
        before = protocol.stats.snapshot()
        for _ in range(threshold):
            protocol.process(0, item)
        delta = protocol.stats.snapshot() - before
        assert delta.messages >= 1
