"""Direct unit tests of the §3.1 coordinator's internal machinery."""

from __future__ import annotations

import pytest

from repro.common.params import TrackingParams
from repro.core.quantile.coordinator import merge_rank_estimator
from repro.core.quantile.protocol import QuantileProtocol

UNIVERSE = 1 << 10


class TestMergeRankEstimator:
    def test_single_site(self):
        total, candidates, est_rank = merge_rank_estimator(
            [(9, 3, [3, 6, 9])]
        )
        assert total == 9
        assert candidates == [3, 6, 9]
        assert est_rank(2) == 0
        assert est_rank(3) == 3
        assert est_rank(9) == 9

    def test_multi_site_error_bound(self):
        """est_rank error is below the sum of the per-site buckets."""
        site_a = sorted([1, 5, 9, 13, 17, 21])
        site_b = sorted([2, 4, 6, 8, 10, 12])
        replies = [
            (6, 2, [5, 13, 21]),  # every 2nd item of site_a
            (6, 2, [4, 8, 12]),  # every 2nd item of site_b
        ]
        total, _candidates, est_rank = merge_rank_estimator(replies)
        assert total == 12
        for probe in range(0, 25):
            exact = sum(1 for v in site_a + site_b if v <= probe)
            assert abs(est_rank(probe) - exact) <= 4  # sum of buckets

    def test_empty_sites(self):
        total, candidates, est_rank = merge_rank_estimator(
            [(0, 1, []), (0, 1, [])]
        )
        assert total == 0
        assert candidates == []
        assert est_rank(100) == 0


def build_protocol(arrivals):
    params = TrackingParams(num_sites=2, epsilon=0.1, universe_size=UNIVERSE)
    protocol = QuantileProtocol(params, phi=0.5)
    for index, item in enumerate(arrivals):
        protocol.process(index % 2, item)
    return protocol


class TestCoordinatorPaths:
    def test_interval_counts_are_underestimates(self):
        arrivals = [1 + (i * 37) % UNIVERSE for i in range(4000)]
        protocol = build_protocol(arrivals)
        coordinator = protocol._coordinator
        partition = coordinator.partition
        # Every coordinator interval count must not exceed the exact count.
        from collections import Counter

        exact = Counter(arrivals)
        for index in range(len(partition)):
            interval = partition.interval(index)
            true = sum(
                cnt
                for value, cnt in exact.items()
                if interval.lo <= value < interval.hi
            )
            assert interval.count <= true

    def test_splits_keep_partitions_aligned_with_sites(self):
        arrivals = [1 + (i * 101) % UNIVERSE for i in range(5000)]
        protocol = build_protocol(arrivals)
        bounds = protocol._coordinator.partition.boundaries()
        for site in protocol._sites:
            assert site._boundaries == bounds

    def test_tracked_position_synchronised(self):
        arrivals = [1 + (i * 13) % UNIVERSE for i in range(3000)]
        protocol = build_protocol(arrivals)
        tracked = protocol._coordinator.tracked
        for site in protocol._sites:
            assert site.tracked_position == tracked

    def test_unsplittable_interval_survives(self):
        """Hammering one value makes its interval unsplittable, not fatal."""
        arrivals = [500] * 6000
        protocol = build_protocol(arrivals)
        assert protocol.quantile() == 500

    def test_rebuild_requires_items(self):
        from repro.common.errors import ProtocolError
        from repro.core.quantile.coordinator import QuantileCoordinator
        from repro.core.quantile.site import QuantileSite
        from repro.network.runtime import Network

        params = TrackingParams(num_sites=2, epsilon=0.1, universe_size=64)
        network = Network(2)
        sites = [QuantileSite(i, network, params) for i in range(2)]
        coordinator = QuantileCoordinator(network, params, 0.5)
        network.bind(coordinator, sites)
        with pytest.raises(ProtocolError):
            coordinator.rebuild()
