"""Regression tests for subtle all-quantiles bugs found during development.

1. *Summary-resolution thrash*: rebuild summaries must be ε-resolution
   (bucket ``ε·m/32k``), not interval-relative — coarse summaries make deep
   splitting elements garbage and the balance invariant rebuilds cascade
   (thousands of rebuilds instead of ~one leaf split budget per round).
2. *Mid-walk reentrancy*: a site's root-to-leaf count walk can trigger a
   rebuild that replaces the rest of its own path; the walk must abort
   instead of dereferencing removed nodes.
3. *Hot-value ties*: a value holding most of a subtree's mass must end up
   isolated (skewed splits) rather than rebuilding forever.
"""

from __future__ import annotations

import math

from repro.common.params import TrackingParams
from repro.core.all_quantiles import AllQuantilesProtocol
from repro.workloads import make_stream, round_robin_partitioner, zipf_stream

UNIVERSE = 1 << 14


def test_rebuilds_stay_within_amortised_budget():
    """Partial rebuilds per round must be O(1/eps), not O(n)."""
    epsilon = 0.05
    params = TrackingParams(num_sites=4, epsilon=epsilon, universe_size=UNIVERSE)
    protocol = AllQuantilesProtocol(params)
    stream = make_stream(
        zipf_stream, round_robin_partitioner, 30_000, UNIVERSE, 4, seed=0, skew=1.2
    )
    protocol.process_stream(stream)
    rounds = max(1, protocol.rounds_completed)
    # Leaf splits alone are Theta(1/eps) per round; allow a small multiple
    # for invariant repairs. The thrash bug produced ~40x this.
    assert protocol.partial_rebuilds / rounds <= 6 / epsilon


def test_cost_not_worse_than_small_constant_times_naive():
    """At 30k items the protocol must already be within ~10x of naive
    (the thrash bug put it at >60x and growing)."""
    params = TrackingParams(num_sites=4, epsilon=0.05, universe_size=UNIVERSE)
    protocol = AllQuantilesProtocol(params)
    n = 30_000
    stream = make_stream(
        zipf_stream, round_robin_partitioner, n, UNIVERSE, 4, seed=0, skew=1.2
    )
    protocol.process_stream(stream)
    assert protocol.stats.words <= 10 * 2 * n


def test_single_hot_value_isolates_into_narrow_leaf():
    """80% of mass on one value: the tree must pin it down exactly."""
    params = TrackingParams(num_sites=2, epsilon=0.1, universe_size=UNIVERSE)
    protocol = AllQuantilesProtocol(params)
    hot = 7777
    for index in range(20_000):
        item = hot if index % 5 else 1 + (index * 31) % UNIVERSE
        protocol.process(index % 2, item)
    # The hot value's leaf is single-value, so its rank jump is sharp.
    n = protocol.items_processed
    jump = protocol.rank(hot) - protocol.rank(hot - 1)
    assert jump >= (0.8 - 2 * params.epsilon) * n
    # And the structure did not melt down rebuilding.
    rounds = max(1, protocol.rounds_completed)
    assert protocol.partial_rebuilds / rounds <= 6 / params.epsilon


def test_reentrant_walks_survive_long_adversarial_run():
    """Sorted arrivals force constant splits/rebuilds right under active
    site walks; the run must complete without ProtocolError."""
    params = TrackingParams(num_sites=3, epsilon=0.1, universe_size=UNIVERSE)
    protocol = AllQuantilesProtocol(params)
    for index in range(20_000):
        item = 1 + index % UNIVERSE  # monotone sweep: mass keeps moving
        protocol.process(index % 3, item)
    protocol.tree.check_structure()
    assert protocol.estimated_total >= (1 - params.epsilon) * 20_000
