"""All-quantiles protocol (§4) tests: rank guarantee, tree invariants."""

from __future__ import annotations

import pytest

from repro.common.params import TrackingParams
from repro.core.all_quantiles import AllQuantilesProtocol
from repro.core.all_quantiles.tree import height_bound
from repro.oracle import ExactTracker, audit_rank_protocol
from repro.workloads import (
    hash_partitioner,
    make_stream,
    round_robin_partitioner,
    shifting_stream,
    uniform_stream,
    zipf_stream,
)

UNIVERSE = 1 << 12
PROBES = [1, 64, 512, 1024, 2048, 3000, UNIVERSE - 1]


class TestRankGuarantee:
    def test_rank_error_within_eps_at_all_times(self, uniform_arrivals):
        params = TrackingParams(num_sites=4, epsilon=0.1, universe_size=UNIVERSE)
        protocol = AllQuantilesProtocol(params)
        report = audit_rank_protocol(
            protocol, uniform_arrivals, probe_values=PROBES, checkpoint_every=250
        )
        assert report.ok, report.violations[:3]
        assert report.max_error <= params.epsilon

    def test_zipf_stream(self, zipf_arrivals):
        params = TrackingParams(num_sites=4, epsilon=0.1, universe_size=UNIVERSE)
        protocol = AllQuantilesProtocol(params)
        report = audit_rank_protocol(
            protocol, zipf_arrivals, probe_values=PROBES, checkpoint_every=250
        )
        assert report.ok, report.violations[:3]

    def test_shifting_stream_hash_partition(self):
        params = TrackingParams(num_sites=4, epsilon=0.1, universe_size=UNIVERSE)
        stream = make_stream(
            shifting_stream, hash_partitioner, 8_000, UNIVERSE, 4, seed=21
        )
        protocol = AllQuantilesProtocol(params)
        report = audit_rank_protocol(
            protocol, stream, probe_values=PROBES, checkpoint_every=250
        )
        assert report.ok, report.violations[:3]

    def test_all_phis_simultaneously(self, uniform_arrivals):
        """The defining feature: every phi is eps-correct from one structure."""
        params = TrackingParams(num_sites=4, epsilon=0.1, universe_size=UNIVERSE)
        protocol = AllQuantilesProtocol(params)
        oracle = ExactTracker(UNIVERSE)
        for site_id, item in uniform_arrivals:
            protocol.process(site_id, item)
            oracle.update(item)
        for phi in [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99]:
            value = protocol.quantile(phi)
            offset = oracle.quantile_rank_offset(value, phi)
            assert offset <= params.epsilon, f"phi={phi}"


class TestTreeInvariants:
    @pytest.fixture
    def finished(self, uniform_arrivals):
        params = TrackingParams(num_sites=4, epsilon=0.1, universe_size=UNIVERSE)
        protocol = AllQuantilesProtocol(params)
        protocol.process_stream(uniform_arrivals)
        return protocol

    def test_intervals_tile(self, finished):
        finished.tree.check_structure()

    def test_height_bounded(self, finished):
        assert finished.tree.height() <= 2 * height_bound(0.1)

    def test_leaf_count_theta_one_over_eps(self, finished):
        leaves = len(finished.tree.leaves())
        assert 1 / 0.1 * 0.5 <= leaves <= 1 / 0.1 * 12

    def test_leaf_sizes_bounded(self, finished, uniform_arrivals):
        oracle = ExactTracker(UNIVERSE)
        for _site, item in uniform_arrivals:
            oracle.update(item)
        m = finished._coordinator.round_base
        for leaf in finished.tree.leaves():
            true = oracle.rank_leq(leaf.hi - 1) - oracle.rank_less(leaf.lo)
            assert true <= 0.1 * m / 2 + 0.1 * m / 8  # eps*m/2 plus count lag

    def test_node_counts_within_theta(self, finished, uniform_arrivals):
        oracle = ExactTracker(UNIVERSE)
        for _site, item in uniform_arrivals:
            oracle.update(item)
        m = finished._coordinator.round_base
        theta = finished._coordinator.theta
        for node in finished.tree.nodes.values():
            true = oracle.rank_leq(node.hi - 1) - oracle.rank_less(node.lo)
            assert node.su <= true
            assert true - node.su <= theta * m + 1


class TestDegenerateStreams:
    def test_single_value_stream(self):
        params = TrackingParams(num_sites=2, epsilon=0.2, universe_size=64)
        protocol = AllQuantilesProtocol(params)
        for index in range(2000):
            protocol.process(index % 2, 17)
        assert protocol.quantile(0.5) == 17
        assert protocol.rank(16) <= 0.2 * 2000
        assert protocol.rank(17) >= (1 - 0.2) * 2000

    def test_two_value_stream(self):
        params = TrackingParams(num_sites=2, epsilon=0.1, universe_size=8)
        protocol = AllQuantilesProtocol(params)
        arrivals = ([1] * 3 + [5] * 7) * 300
        for index, item in enumerate(arrivals):
            protocol.process(index % 2, item)
        n = len(arrivals)
        assert abs(protocol.rank(1) - 0.3 * n) <= 0.1 * n
        assert abs(protocol.rank(5) - n) <= 0.1 * n
        assert protocol.quantile(0.9) == 5


class TestDerivedHeavyHitters:
    def test_heavy_hitters_from_quantile_structure(self):
        """The [7] observation: 2eps-approximate HH from the rank structure."""
        params = TrackingParams(num_sites=4, epsilon=0.04, universe_size=UNIVERSE)
        from repro.workloads import mixture_stream

        stream = make_stream(
            mixture_stream,
            round_robin_partitioner,
            10_000,
            UNIVERSE,
            4,
            seed=6,
            heavy_items={300: 0.25, 2222: 0.15},
        )
        protocol = AllQuantilesProtocol(params)
        protocol.process_stream(stream)
        hitters = protocol.heavy_hitters(0.12)
        assert 300 in hitters
        assert 2222 in hitters
        oracle = ExactTracker(UNIVERSE)
        for _site, item in stream:
            oracle.update(item)
        for item in hitters:
            # 2eps-approximate: nothing below (phi - 2eps) reported.
            assert oracle.frequency(item) >= (0.12 - 2 * 0.04) * oracle.total


class TestMechanics:
    def test_rounds_follow_doubling(self, uniform_arrivals):
        params = TrackingParams(num_sites=4, epsilon=0.1, universe_size=UNIVERSE)
        protocol = AllQuantilesProtocol(params)
        protocol.process_stream(uniform_arrivals)
        import math

        doublings = math.log2(len(uniform_arrivals) / params.warmup_items)
        assert 1 <= protocol.rounds_completed <= 2 * doublings + 3

    def test_estimated_total(self, uniform_arrivals):
        params = TrackingParams(num_sites=4, epsilon=0.1, universe_size=UNIVERSE)
        protocol = AllQuantilesProtocol(params)
        protocol.process_stream(uniform_arrivals)
        n = len(uniform_arrivals)
        assert abs(protocol.estimated_total - n) <= params.epsilon * n

    def test_quantile_rejects_bad_phi(self, params):
        protocol = AllQuantilesProtocol(params)
        from repro.common.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            protocol.quantile(-0.5)

    def test_sketch_sites_variant(self, uniform_arrivals):
        params = TrackingParams(num_sites=4, epsilon=0.1, universe_size=UNIVERSE)
        protocol = AllQuantilesProtocol(params, use_sketch_sites=True)
        oracle = ExactTracker(UNIVERSE)
        for site_id, item in uniform_arrivals:
            protocol.process(site_id, item)
            oracle.update(item)
        value = protocol.quantile(0.5)
        # Sketch variant trades constants: allow 2x epsilon.
        assert oracle.quantile_rank_offset(value, 0.5) <= 2 * params.epsilon
