"""Exact tracker tests (including property tests against brute force)."""

from __future__ import annotations

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.oracle import ExactTracker


class TestBasics:
    def test_frequency_and_total(self):
        tracker = ExactTracker(64)
        for item in [5, 5, 9]:
            tracker.update(item)
        assert tracker.total == 3
        assert tracker.frequency(5) == 2
        assert tracker.frequency(1) == 0

    def test_ranks(self):
        tracker = ExactTracker(64)
        for item in [10, 20, 20, 30]:
            tracker.update(item)
        assert tracker.rank_leq(20) == 3
        assert tracker.rank_less(20) == 1

    def test_heavy_hitters(self):
        tracker = ExactTracker(64)
        for item in [7] * 6 + [8] * 3 + [9]:
            tracker.update(item)
        assert tracker.heavy_hitters(0.5) == {7}
        assert tracker.heavy_hitters(0.3) == {7, 8}

    def test_quantile(self):
        tracker = ExactTracker(64)
        for item in range(1, 11):
            tracker.update(item)
        assert tracker.quantile(0.5) == 5


class TestGuaranteeHelpers:
    def test_is_valid_quantile_with_ties(self):
        tracker = ExactTracker(8)
        for item in [3] * 100:
            tracker.update(item)
        assert tracker.is_valid_quantile(3, 0.5, 0.0)
        assert not tracker.is_valid_quantile(2, 0.5, 0.1)

    def test_quantile_rank_offset_zero_inside_window(self):
        tracker = ExactTracker(8)
        for item in [3] * 10:
            tracker.update(item)
        assert tracker.quantile_rank_offset(3, 0.5) == 0.0
        assert tracker.quantile_rank_offset(2, 0.5) == 0.5

    def test_hh_violations(self):
        tracker = ExactTracker(64)
        for item in [7] * 6 + [8] * 3 + [9]:
            tracker.update(item)
        missed, spurious = tracker.heavy_hitter_violations(
            reported={9}, phi=0.5, epsilon=0.1
        )
        assert missed == {7}
        assert spurious == {9}

    def test_rank_error(self):
        tracker = ExactTracker(64)
        tracker.update(10)
        assert tracker.rank_error(10, 1) == 0
        assert tracker.rank_error(10, 3) == 2


@settings(max_examples=100, deadline=None)
@given(
    items=st.lists(
        st.integers(min_value=1, max_value=32), min_size=1, max_size=200
    ),
    phi=st.floats(min_value=0.05, max_value=0.95),
)
def test_matches_brute_force(items, phi):
    tracker = ExactTracker(32)
    for item in items:
        tracker.update(item)
    counts = Counter(items)
    total = len(items)
    assert tracker.heavy_hitters(phi) == {
        item for item, cnt in counts.items() if cnt >= phi * total
    }
    value = tracker.quantile(phi)
    smaller = sum(1 for v in items if v < value)
    greater = sum(1 for v in items if v > value)
    assert smaller <= phi * total + 1e-9
    assert greater <= (1 - phi) * total + 1e-9
