"""Guarantee-checker tests: it must catch deliberately broken protocols."""

from __future__ import annotations

from repro.common.params import TrackingParams
from repro.core.heavy_hitters import HeavyHitterProtocol
from repro.core.quantile import QuantileProtocol
from repro.oracle import (
    audit_heavy_hitter_protocol,
    audit_quantile_protocol,
    audit_rank_protocol,
)

UNIVERSE = 256


class _LyingHH(HeavyHitterProtocol):
    """Reports an empty set no matter what (false negatives)."""

    def heavy_hitters(self, phi):
        return set()


class _LyingQuantile(QuantileProtocol):
    """Always answers the universe minimum."""

    def quantile(self):
        return 1


class _LyingRank:
    """Duck-typed rank protocol that answers 0 everywhere."""

    def __init__(self, params):
        self.params = params

    def process(self, site_id, item):
        pass

    def rank(self, item):
        return 0


def heavy_arrivals(n=3000):
    return [(index % 2, 5 if index % 3 else 200) for index in range(n)]


class TestCatchesViolations:
    def test_catches_missed_heavy_hitters(self):
        params = TrackingParams(num_sites=2, epsilon=0.05, universe_size=UNIVERSE)
        protocol = _LyingHH(params)
        report = audit_heavy_hitter_protocol(
            protocol, heavy_arrivals(), phi=0.2, checkpoint_every=300
        )
        assert not report.ok
        assert any("missed" in violation for violation in report.violations)

    def test_catches_bad_quantile(self):
        params = TrackingParams(num_sites=2, epsilon=0.05, universe_size=UNIVERSE)
        protocol = _LyingQuantile(params, phi=0.5)
        arrivals = [(index % 2, 100 + index % 50) for index in range(3000)]
        report = audit_quantile_protocol(protocol, arrivals, checkpoint_every=300)
        assert not report.ok
        assert report.max_error > 0.05

    def test_catches_bad_ranks(self):
        params = TrackingParams(num_sites=2, epsilon=0.05, universe_size=UNIVERSE)
        protocol = _LyingRank(params)
        arrivals = [(0, 100)] * 1000
        report = audit_rank_protocol(
            protocol, arrivals, probe_values=[150], checkpoint_every=100
        )
        assert not report.ok


class TestPassesHonest:
    def test_honest_protocol_passes(self):
        params = TrackingParams(num_sites=2, epsilon=0.1, universe_size=UNIVERSE)
        protocol = HeavyHitterProtocol(params)
        report = audit_heavy_hitter_protocol(
            protocol, heavy_arrivals(), phi=0.2, checkpoint_every=300
        )
        assert report.ok, report.violations
        assert report.checkpoints == 10
