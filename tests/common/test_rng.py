"""RNG plumbing tests."""

from __future__ import annotations

import pytest

from repro.common.rng import make_rng, spawn_rngs


class TestMakeRng:
    def test_deterministic(self):
        a = make_rng(42).integers(0, 1000, size=10)
        b = make_rng(42).integers(0, 1000, size=10)
        assert (a == b).all()

    def test_different_seeds_differ(self):
        a = make_rng(1).integers(0, 1 << 30, size=10)
        b = make_rng(2).integers(0, 1 << 30, size=10)
        assert (a != b).any()


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5
        assert spawn_rngs(0, 0) == []

    def test_children_independent(self):
        children = spawn_rngs(7, 3)
        draws = [rng.integers(0, 1 << 30, size=8) for rng in children]
        assert (draws[0] != draws[1]).any()
        assert (draws[1] != draws[2]).any()

    def test_reproducible(self):
        a = [rng.integers(0, 100, size=4).tolist() for rng in spawn_rngs(9, 2)]
        b = [rng.integers(0, 100, size=4).tolist() for rng in spawn_rngs(9, 2)]
        assert a == b

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)
