"""Parameter validation tests."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigurationError, UniverseError
from repro.common.validation import (
    require_epsilon,
    require_phi,
    require_positive,
    require_site_count,
    require_universe,
)


class TestRequirePositive:
    def test_accepts_positive(self):
        require_positive(1, "x")
        require_positive(0.001, "x")

    @pytest.mark.parametrize("value", [0, -1, -0.5])
    def test_rejects_non_positive(self, value):
        with pytest.raises(ConfigurationError, match="x must be positive"):
            require_positive(value, "x")


class TestRequireEpsilon:
    @pytest.mark.parametrize("epsilon", [0.001, 0.5, 0.999])
    def test_accepts_valid(self, epsilon):
        require_epsilon(epsilon)

    @pytest.mark.parametrize("epsilon", [0, 1, -0.1, 2])
    def test_rejects_invalid(self, epsilon):
        with pytest.raises(ConfigurationError):
            require_epsilon(epsilon)


class TestRequirePhi:
    def test_accepts_range(self):
        require_phi(0.0)
        require_phi(1.0)
        require_phi(0.5)

    @pytest.mark.parametrize("phi", [-0.1, 1.1])
    def test_rejects_out_of_range(self, phi):
        with pytest.raises(ConfigurationError):
            require_phi(phi)

    def test_phi_must_exceed_epsilon_when_given(self):
        require_phi(0.2, epsilon=0.1)
        with pytest.raises(ConfigurationError):
            require_phi(0.05, epsilon=0.1)


class TestRequireUniverse:
    def test_accepts_in_range(self):
        require_universe(1, 10)
        require_universe(10, 10)

    @pytest.mark.parametrize("item", [0, 11, -3])
    def test_rejects_out_of_range(self, item):
        with pytest.raises(UniverseError):
            require_universe(item, 10)


class TestRequireSiteCount:
    def test_accepts(self):
        require_site_count(1)
        require_site_count(64)

    @pytest.mark.parametrize("k", [0, -1])
    def test_rejects(self, k):
        with pytest.raises(ConfigurationError):
            require_site_count(k)
