"""TrackingParams tests."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigurationError
from repro.common.params import TrackingParams


class TestTrackingParams:
    def test_defaults(self):
        params = TrackingParams(num_sites=4, epsilon=0.1)
        assert params.k == 4
        assert params.universe_size == 1 << 20

    def test_warmup_items(self):
        params = TrackingParams(num_sites=8, epsilon=0.05)
        assert params.warmup_items == 160  # k / eps

    def test_warmup_at_least_one(self):
        params = TrackingParams(num_sites=1, epsilon=0.999)
        assert params.warmup_items >= 1

    def test_frozen(self):
        params = TrackingParams(num_sites=2, epsilon=0.1)
        with pytest.raises(AttributeError):
            params.epsilon = 0.2

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_sites": 0, "epsilon": 0.1},
            {"num_sites": 2, "epsilon": 0.0},
            {"num_sites": 2, "epsilon": 1.0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            TrackingParams(**kwargs)
