"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.common.params import TrackingParams
from repro.workloads import (
    make_stream,
    mixture_stream,
    round_robin_partitioner,
    uniform_stream,
    zipf_stream,
)

UNIVERSE = 1 << 12


@pytest.fixture
def params() -> TrackingParams:
    """Small but non-trivial default parameters."""
    return TrackingParams(num_sites=4, epsilon=0.1, universe_size=UNIVERSE)


@pytest.fixture
def tight_params() -> TrackingParams:
    """Tighter epsilon for accuracy-sensitive tests."""
    return TrackingParams(num_sites=4, epsilon=0.05, universe_size=UNIVERSE)


@pytest.fixture
def uniform_arrivals():
    """8k uniform arrivals over 4 sites (round-robin)."""
    return make_stream(
        uniform_stream, round_robin_partitioner, 8_000, UNIVERSE, 4, seed=1
    )


@pytest.fixture
def zipf_arrivals():
    """8k Zipf arrivals over 4 sites (round-robin)."""
    return make_stream(
        zipf_stream,
        round_robin_partitioner,
        8_000,
        UNIVERSE,
        4,
        seed=2,
        skew=1.3,
    )


@pytest.fixture
def planted_heavy_arrivals():
    """Arrivals with known heavy hitters at items 17 and 1000."""
    return make_stream(
        mixture_stream,
        round_robin_partitioner,
        8_000,
        UNIVERSE,
        4,
        seed=3,
        heavy_items={17: 0.2, 1000: 0.12},
    )
