"""Stream assembly tests."""

from __future__ import annotations

import pytest

from repro.workloads import make_stream, round_robin_partitioner, uniform_stream
from repro.workloads.stream import stream_chunks


class TestMakeStream:
    def test_shape_and_determinism(self):
        a = make_stream(
            uniform_stream, round_robin_partitioner, 100, 64, 4, seed=5
        )
        b = make_stream(
            uniform_stream, round_robin_partitioner, 100, 64, 4, seed=5
        )
        assert a == b
        assert len(a) == 100
        assert all(0 <= site < 4 and 1 <= item <= 64 for site, item in a)

    def test_seed_changes_stream(self):
        a = make_stream(uniform_stream, round_robin_partitioner, 50, 64, 2, seed=1)
        b = make_stream(uniform_stream, round_robin_partitioner, 50, 64, 2, seed=2)
        assert a != b

    def test_generator_kwargs_forwarded(self):
        from repro.workloads import zipf_stream

        stream = make_stream(
            zipf_stream, round_robin_partitioner, 50, 64, 2, seed=0, skew=2.0
        )
        assert len(stream) == 50


class TestStreamChunks:
    def test_chunking(self):
        stream = [(0, index) for index in range(1, 11)]
        chunks = list(stream_chunks(stream, 4))
        assert [len(chunk) for chunk, _ in chunks] == [4, 4, 2]
        assert [so_far for _, so_far in chunks] == [4, 8, 10]

    def test_invalid_checkpoint(self):
        with pytest.raises(ValueError):
            list(stream_chunks([], 0))
