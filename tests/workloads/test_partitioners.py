"""Site partitioner tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.rng import make_rng
from repro.workloads import (
    block_partitioner,
    hash_partitioner,
    random_partitioner,
    round_robin_partitioner,
    skewed_partitioner,
)

ITEMS = np.arange(1, 1001)


class TestRange:
    @pytest.mark.parametrize(
        "partitioner",
        [
            round_robin_partitioner,
            random_partitioner,
            skewed_partitioner,
            hash_partitioner,
            block_partitioner,
        ],
    )
    def test_sites_in_range(self, partitioner):
        sites = partitioner(ITEMS, 4, rng=make_rng(0))
        assert len(sites) == len(ITEMS)
        assert sites.min() >= 0
        assert sites.max() <= 3


class TestSemantics:
    def test_round_robin_cycles(self):
        sites = round_robin_partitioner(ITEMS, 4)
        assert sites[:8].tolist() == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_hash_groups_by_item(self):
        items = np.array([5, 5, 9, 5, 9])
        sites = hash_partitioner(items, 4)
        assert sites[0] == sites[1] == sites[3]
        assert sites[2] == sites[4]

    def test_skewed_favours_site_zero(self):
        sites = skewed_partitioner(ITEMS, 4, rng=make_rng(1))
        assert (sites == 0).mean() > 0.6

    def test_block_is_contiguous(self):
        sites = block_partitioner(ITEMS, 4)
        assert (np.diff(sites) >= 0).all()
        assert sites[0] == 0
        assert sites[-1] == 3

    def test_random_spreads(self):
        sites = random_partitioner(ITEMS, 4, rng=make_rng(2))
        counts = np.bincount(sites, minlength=4)
        assert counts.min() > 150
