"""Workload generator tests."""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest

from repro.common.rng import make_rng
from repro.workloads import (
    mixture_stream,
    permutation_stream,
    sequential_stream,
    shifting_stream,
    uniform_stream,
    zipf_stream,
)

UNIVERSE = 1000


class TestBounds:
    @pytest.mark.parametrize(
        "generator,kwargs",
        [
            (uniform_stream, {}),
            (zipf_stream, {"skew": 1.3}),
            (sequential_stream, {}),
            (shifting_stream, {}),
        ],
    )
    def test_items_in_universe(self, generator, kwargs):
        items = generator(5000, UNIVERSE, rng=make_rng(0), **kwargs)
        assert len(items) == 5000
        assert items.min() >= 1
        assert items.max() <= UNIVERSE


class TestZipf:
    def test_skew_concentrates_mass(self):
        items = zipf_stream(20_000, UNIVERSE, skew=1.5, rng=make_rng(1))
        counts = Counter(items.tolist())
        top = counts.most_common(1)[0][1]
        assert top > 0.2 * len(items)

    def test_invalid_skew(self):
        with pytest.raises(ValueError):
            zipf_stream(10, UNIVERSE, skew=0)

    def test_deterministic(self):
        a = zipf_stream(100, UNIVERSE, rng=make_rng(3))
        b = zipf_stream(100, UNIVERSE, rng=make_rng(3))
        assert (a == b).all()


class TestPermutation:
    def test_all_distinct(self):
        items = permutation_stream(500, UNIVERSE, rng=make_rng(2))
        assert len(set(items.tolist())) == 500

    def test_rejects_oversized(self):
        with pytest.raises(ValueError):
            permutation_stream(UNIVERSE + 1, UNIVERSE)


class TestMixture:
    def test_planted_frequencies(self):
        items = mixture_stream(
            20_000, UNIVERSE, heavy_items={7: 0.3, 500: 0.1}, rng=make_rng(4)
        )
        counts = Counter(items.tolist())
        assert abs(counts[7] / 20_000 - 0.3) < 0.03
        assert abs(counts[500] / 20_000 - 0.1) < 0.03

    def test_rejects_over_unit_mass(self):
        with pytest.raises(ValueError):
            mixture_stream(10, UNIVERSE, heavy_items={1: 0.8, 2: 0.5})


class TestShifting:
    def test_phases_have_different_centres(self):
        items = shifting_stream(
            8000, UNIVERSE, num_phases=2, rng=make_rng(5)
        )
        first = np.median(items[:4000])
        second = np.median(items[4000:])
        assert abs(first - second) > UNIVERSE * 0.02


class TestSequential:
    def test_wraps(self):
        items = sequential_stream(UNIVERSE + 5, UNIVERSE)
        assert items[0] == 1
        assert items[UNIVERSE] == 1
        assert items[UNIVERSE - 1] == UNIVERSE
