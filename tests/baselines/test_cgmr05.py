"""CGMR05 baseline tests: correctness and the 1/eps^2 cost signature."""

from __future__ import annotations

from repro.baselines import CGMR05Protocol
from repro.common.params import TrackingParams
from repro.oracle import ExactTracker

UNIVERSE = 1 << 12


class TestCorrectness:
    def test_rank_error_within_eps(self, uniform_arrivals):
        params = TrackingParams(num_sites=4, epsilon=0.1, universe_size=UNIVERSE)
        protocol = CGMR05Protocol(params)
        oracle = ExactTracker(UNIVERSE)
        for site_id, item in uniform_arrivals:
            protocol.process(site_id, item)
            oracle.update(item)
        n = oracle.total
        for probe in [100, 1000, 2000, 3500]:
            assert abs(protocol.rank(probe) - oracle.rank_leq(probe)) <= (
                params.epsilon * n
            )

    def test_quantile_error(self, uniform_arrivals):
        params = TrackingParams(num_sites=4, epsilon=0.1, universe_size=UNIVERSE)
        protocol = CGMR05Protocol(params)
        oracle = ExactTracker(UNIVERSE)
        for site_id, item in uniform_arrivals:
            protocol.process(site_id, item)
            oracle.update(item)
        value = protocol.quantile(0.5)
        assert oracle.quantile_rank_offset(value, 0.5) <= params.epsilon

    def test_estimated_total(self, uniform_arrivals):
        params = TrackingParams(num_sites=4, epsilon=0.1, universe_size=UNIVERSE)
        protocol = CGMR05Protocol(params)
        protocol.process_stream(uniform_arrivals)
        n = len(uniform_arrivals)
        assert abs(protocol.estimated_total - n) <= params.epsilon * n


class TestCostSignature:
    def test_cost_scales_worse_than_ours_in_eps(self, uniform_arrivals):
        """Halving eps should roughly quadruple CGMR05's cost (eps^-2) but
        only ~double ours (eps^-1)."""
        from repro.core.all_quantiles import AllQuantilesProtocol

        def run(cls, epsilon):
            params = TrackingParams(
                num_sites=4, epsilon=epsilon, universe_size=UNIVERSE
            )
            protocol = cls(params)
            protocol.process_stream(uniform_arrivals)
            return protocol.stats.words

        cgmr_ratio = run(CGMR05Protocol, 0.05) / run(CGMR05Protocol, 0.2)
        ours_ratio = run(AllQuantilesProtocol, 0.05) / run(
            AllQuantilesProtocol, 0.2
        )
        assert cgmr_ratio > ours_ratio

    def test_shipments_grow_with_log_n(self, params):
        import numpy as np

        rng = np.random.default_rng(0)
        shipments = []
        for n in [2_000, 8_000]:
            protocol = CGMR05Protocol(params)
            items = rng.integers(1, params.universe_size, size=n)
            for index, item in enumerate(items):
                protocol.process(index % params.k, int(item))
            shipments.append(protocol.shipments)
        # 4x the data should add shipments but far less than 4x.
        assert shipments[1] > shipments[0]
        assert shipments[1] < 3 * shipments[0]
