"""Periodic polling baseline tests."""

from __future__ import annotations

import pytest

from repro.baselines import PeriodicPollProtocol
from repro.common.params import TrackingParams
from repro.oracle import ExactTracker

UNIVERSE = 1 << 12


class TestPolling:
    def test_polls_happen(self, uniform_arrivals):
        params = TrackingParams(num_sites=4, epsilon=0.1, universe_size=UNIVERSE)
        protocol = PeriodicPollProtocol(params, period=500)
        protocol.process_stream(uniform_arrivals)
        assert protocol.polls >= len(uniform_arrivals) // 500 - 2

    def test_answers_fresh_right_after_poll(self, uniform_arrivals):
        params = TrackingParams(num_sites=4, epsilon=0.1, universe_size=UNIVERSE)
        protocol = PeriodicPollProtocol(params, period=500)
        oracle = ExactTracker(UNIVERSE)
        for site_id, item in uniform_arrivals:
            protocol.process(site_id, item)
            oracle.update(item)
        protocol._coordinator.poll()  # force freshness, then compare
        value = protocol.quantile(0.5)
        assert oracle.quantile_rank_offset(value, 0.5) <= params.epsilon

    def test_answers_can_go_stale_between_polls(self):
        """The whole point of push-based protocols: polling misses changes."""
        params = TrackingParams(num_sites=2, epsilon=0.05, universe_size=UNIVERSE)
        protocol = PeriodicPollProtocol(params, period=100_000)  # ~never
        oracle = ExactTracker(UNIVERSE)
        # Low values first, then a flood of high values with no poll.
        arrivals = [(i % 2, 10) for i in range(2_000)]
        arrivals += [(i % 2, 4_000) for i in range(6_000)]
        worst = 0.0
        for site_id, item in arrivals:
            protocol.process(site_id, item)
            oracle.update(item)
            if not protocol.in_warmup and oracle.total % 500 == 0:
                offset = oracle.quantile_rank_offset(
                    protocol.quantile(0.5), 0.5
                )
                worst = max(worst, offset)
        assert worst > params.epsilon  # guarantee is violated between polls

    def test_invalid_period(self):
        params = TrackingParams(num_sites=2, epsilon=0.1, universe_size=64)
        from repro.common.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            PeriodicPollProtocol(params, period=0)
