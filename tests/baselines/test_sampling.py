"""§5 sampling protocol tests (probabilistic guarantees, fixed seeds)."""

from __future__ import annotations

import pytest

from repro.baselines import SamplingProtocol
from repro.common.params import TrackingParams
from repro.oracle import ExactTracker
from repro.workloads import make_stream, mixture_stream, round_robin_partitioner

UNIVERSE = 1 << 12


@pytest.fixture
def heavy_stream():
    return make_stream(
        mixture_stream,
        round_robin_partitioner,
        12_000,
        UNIVERSE,
        4,
        seed=4,
        heavy_items={11: 0.3, 777: 0.15},
    )


class TestSampling:
    def test_sample_size_stays_bounded(self, heavy_stream):
        params = TrackingParams(num_sites=4, epsilon=0.1, universe_size=UNIVERSE)
        protocol = SamplingProtocol(params, seed=0)
        protocol.process_stream(heavy_stream)
        target = max(8, int(16 / params.epsilon**2))
        assert protocol.sample_size <= 2 * target + 8

    def test_total_estimate_close(self, heavy_stream):
        params = TrackingParams(num_sites=4, epsilon=0.1, universe_size=UNIVERSE)
        protocol = SamplingProtocol(params, seed=1)
        protocol.process_stream(heavy_stream)
        n = len(heavy_stream)
        assert abs(protocol.estimated_total - n) <= 0.3 * n

    def test_finds_planted_heavy_hitters(self, heavy_stream):
        params = TrackingParams(num_sites=4, epsilon=0.1, universe_size=UNIVERSE)
        protocol = SamplingProtocol(params, seed=2)
        protocol.process_stream(heavy_stream)
        hitters = protocol.heavy_hitters(0.2)
        assert 11 in hitters

    def test_quantile_estimate_reasonable(self, heavy_stream):
        params = TrackingParams(num_sites=4, epsilon=0.1, universe_size=UNIVERSE)
        protocol = SamplingProtocol(params, seed=3)
        oracle = ExactTracker(UNIVERSE)
        for site_id, item in heavy_stream:
            protocol.process(site_id, item)
            oracle.update(item)
        value = protocol.quantile(0.5)
        assert oracle.quantile_rank_offset(value, 0.5) <= 3 * params.epsilon

    def test_deterministic_given_seed(self, heavy_stream):
        params = TrackingParams(num_sites=4, epsilon=0.1, universe_size=UNIVERSE)
        runs = []
        for _ in range(2):
            protocol = SamplingProtocol(params, seed=9)
            protocol.process_stream(heavy_stream)
            runs.append((protocol.stats.words, protocol.sample_size))
        assert runs[0] == runs[1]

    def test_invalid_sample_constant(self):
        params = TrackingParams(num_sites=2, epsilon=0.1, universe_size=64)
        with pytest.raises(ValueError):
            SamplingProtocol(params, sample_constant=0)

    def test_cost_has_inverse_eps_squared_component(self, heavy_stream):
        """Communication grows superlinearly in 1/eps (the 1/eps^2 term)."""
        words = {}
        for epsilon in (0.2, 0.05):
            params = TrackingParams(
                num_sites=4, epsilon=epsilon, universe_size=UNIVERSE
            )
            protocol = SamplingProtocol(params, seed=5)
            protocol.process_stream(heavy_stream)
            words[epsilon] = protocol.stats.words
        assert words[0.05] > 2 * words[0.2]
