"""Naive forward-everything baseline tests."""

from __future__ import annotations

from repro.baselines import NaiveForwardProtocol
from repro.oracle import ExactTracker


class TestNaive:
    def test_exact_answers(self, params, uniform_arrivals):
        protocol = NaiveForwardProtocol(params)
        oracle = ExactTracker(params.universe_size)
        for site_id, item in uniform_arrivals:
            protocol.process(site_id, item)
            oracle.update(item)
        assert protocol.quantile(0.5) == oracle.quantile(0.5)
        assert protocol.rank(1000) == oracle.rank_leq(1000)
        assert protocol.heavy_hitters(0.01) == oracle.heavy_hitters(0.01)

    def test_cost_is_linear(self, params, uniform_arrivals):
        protocol = NaiveForwardProtocol(params)
        protocol.process_stream(uniform_arrivals)
        # 2 words per item, every item.
        assert protocol.stats.words == 2 * len(uniform_arrivals)
        assert protocol.stats.uplink_messages == len(uniform_arrivals)

    def test_warmup_queries(self, params):
        protocol = NaiveForwardProtocol(params)
        protocol.process(0, 5)
        protocol.process(1, 7)
        assert protocol.in_warmup
        assert protocol.quantile(0.0) == 5
        assert protocol.rank(6) == 1
        assert 5 in protocol.heavy_hitters(0.4)
