"""Top-k heuristic baseline tests (Babcock–Olston flavour)."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.baselines import TopKHeuristicProtocol
from repro.common.params import TrackingParams

UNIVERSE = 1 << 12
PARAMS = TrackingParams(num_sites=4, epsilon=0.1, universe_size=UNIVERSE)


def skewed_stream(n=8000, k=4):
    """Item i gets ~1/i of the traffic over 30 items (stable ranks)."""
    items = []
    for index in range(n):
        rank = 1
        value = (index * 2654435761) % 1000 / 1000
        threshold = 0.0
        harmonic = sum(1 / i for i in range(1, 31))
        for i in range(1, 31):
            threshold += (1 / i) / harmonic
            if value < threshold:
                rank = i
                break
        items.append((index % k, rank))
    return items


class TestTopK:
    def test_finds_true_top_items_on_stable_stream(self):
        stream = skewed_stream()
        protocol = TopKHeuristicProtocol(PARAMS, k_items=5)
        protocol.process_stream(stream)
        truth = Counter(item for _site, item in stream)
        expected = {item for item, _cnt in truth.most_common(3)}
        cached = {item for item, _cnt in protocol.top_k()}
        assert expected <= cached

    def test_counts_are_plausible(self):
        stream = skewed_stream()
        protocol = TopKHeuristicProtocol(PARAMS, k_items=5)
        protocol.process_stream(stream)
        truth = Counter(item for _site, item in stream)
        for item, count in protocol.top_k():
            assert count <= truth[item] + 1
            assert count >= 0.5 * truth[item]

    def test_resolutions_counted(self):
        stream = skewed_stream()
        protocol = TopKHeuristicProtocol(PARAMS, k_items=5)
        protocol.process_stream(stream)
        assert protocol.resolutions >= 1

    def test_lazier_slack_resolves_less(self):
        stream = skewed_stream()
        resolutions = {}
        for fraction in (0.5, 4.0):
            protocol = TopKHeuristicProtocol(
                PARAMS, k_items=5, slack_fraction=fraction
            )
            protocol.process_stream(stream)
            resolutions[fraction] = protocol.resolutions
        assert resolutions[4.0] < resolutions[0.5]

    def test_invalid_params(self):
        from repro.common.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            TopKHeuristicProtocol(PARAMS, k_items=0)
        with pytest.raises(ConfigurationError):
            TopKHeuristicProtocol(PARAMS, slack_fraction=0)

    def test_warmup_top_k(self):
        protocol = TopKHeuristicProtocol(PARAMS, k_items=2)
        protocol.process(0, 7)
        protocol.process(1, 7)
        protocol.process(0, 9)
        assert protocol.in_warmup
        assert protocol.top_k()[0][0] == 7
