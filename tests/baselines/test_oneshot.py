"""One-shot computation tests (classical communication model)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import one_shot_heavy_hitters, one_shot_quantile


def split_items(items, k):
    return [list(items[start::k]) for start in range(k)]


class TestOneShotQuantile:
    def test_accuracy(self):
        rng = np.random.default_rng(0)
        items = rng.integers(1, 10_000, size=20_000).tolist()
        per_site = split_items(items, 4)
        answer, words = one_shot_quantile(per_site, phi=0.5, epsilon=0.05)
        ordered = sorted(items)
        rank = sum(1 for value in items if value <= answer)
        assert abs(rank - 0.5 * len(items)) <= 0.05 * len(items)
        assert words > 0

    def test_cost_independent_of_n(self):
        rng = np.random.default_rng(1)
        costs = []
        for n in [10_000, 40_000]:
            items = rng.integers(1, 10_000, size=n).tolist()
            _answer, words = one_shot_quantile(
                split_items(items, 4), phi=0.5, epsilon=0.05
            )
            costs.append(words)
        # O(k/eps) regardless of n: within 30%.
        assert abs(costs[1] - costs[0]) <= 0.3 * costs[0]

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            one_shot_quantile([[], []], phi=0.5, epsilon=0.1)

    def test_tiny_sites_fall_back(self):
        answer, _words = one_shot_quantile([[5], [7]], phi=0.5, epsilon=0.5)
        assert answer in (5, 7)


class TestOneShotHeavyHitters:
    def test_finds_planted(self):
        items = [9] * 500 + list(range(100, 600))
        hitters, words = one_shot_heavy_hitters(
            split_items(items, 4), phi=0.3, epsilon=0.1
        )
        assert 9 in hitters
        assert words > 0

    def test_no_false_positives_below_threshold(self):
        items = [9] * 500 + list(range(100, 600))
        hitters, _words = one_shot_heavy_hitters(
            split_items(items, 4), phi=0.3, epsilon=0.1
        )
        from collections import Counter

        counts = Counter(items)
        for item in hitters:
            assert counts[item] >= (0.3 - 0.1) * len(items)

    def test_empty_input(self):
        hitters, words = one_shot_heavy_hitters([[], []], phi=0.5, epsilon=0.1)
        assert hitters == set()
        assert words == 0
