"""Distributed counter baseline tests."""

from __future__ import annotations

from repro.baselines import DistributedCounter
from repro.common.params import TrackingParams


class TestCounter:
    def test_estimate_within_relative_eps(self, uniform_arrivals):
        params = TrackingParams(num_sites=4, epsilon=0.1, universe_size=1 << 12)
        counter = DistributedCounter(params)
        counter.process_stream(uniform_arrivals)
        n = len(uniform_arrivals)
        assert counter.estimated_total <= n
        assert counter.estimated_total >= (1 - params.epsilon) * n

    def test_cost_logarithmic(self):
        params = TrackingParams(num_sites=4, epsilon=0.1, universe_size=64)
        words = []
        for n in [4_000, 16_000]:
            counter = DistributedCounter(params)
            for index in range(n):
                counter.process(index % 4, 1 + index % 64)
            words.append(counter.stats.words)
        # 4x items should cost much less than 4x words.
        assert words[1] < 2.5 * words[0]

    def test_estimate_during_warmup(self):
        params = TrackingParams(num_sites=2, epsilon=0.5, universe_size=64)
        counter = DistributedCounter(params)
        counter.process(0, 1)
        assert counter.estimated_total == 1
