"""Cross-module integration: every protocol, every hostile workload combo,
audited continuously against the exact oracle."""

from __future__ import annotations

import pytest

from repro.common.params import TrackingParams
from repro.core.all_quantiles import AllQuantilesProtocol
from repro.core.heavy_hitters import HeavyHitterProtocol
from repro.core.quantile import QuantileProtocol
from repro.oracle import (
    audit_heavy_hitter_protocol,
    audit_quantile_protocol,
    audit_rank_protocol,
)
from repro.workloads import (
    block_partitioner,
    hash_partitioner,
    make_stream,
    mixture_stream,
    round_robin_partitioner,
    sequential_stream,
    shifting_stream,
    skewed_partitioner,
    uniform_stream,
    zipf_stream,
)

UNIVERSE = 1 << 12
N = 6_000
PARTITIONERS = {
    "round_robin": round_robin_partitioner,
    "hash": hash_partitioner,
    "skewed": skewed_partitioner,
    "block": block_partitioner,
}
PARAMS = TrackingParams(num_sites=5, epsilon=0.08, universe_size=UNIVERSE)


@pytest.mark.parametrize("partitioner_name", PARTITIONERS)
@pytest.mark.parametrize("generator", [zipf_stream, mixture_stream])
def test_heavy_hitter_guarantee(partitioner_name, generator):
    kwargs = {"skew": 1.4} if generator is zipf_stream else {
        "heavy_items": {42: 0.25, 3333: 0.12}
    }
    stream = make_stream(
        generator,
        PARTITIONERS[partitioner_name],
        N,
        UNIVERSE,
        PARAMS.k,
        seed=31,
        **kwargs,
    )
    protocol = HeavyHitterProtocol(PARAMS)
    report = audit_heavy_hitter_protocol(
        protocol, stream, phi=0.1, checkpoint_every=300
    )
    assert report.ok, report.violations[:3]


@pytest.mark.parametrize("partitioner_name", PARTITIONERS)
@pytest.mark.parametrize(
    "generator", [uniform_stream, shifting_stream, sequential_stream]
)
def test_quantile_guarantee(partitioner_name, generator):
    stream = make_stream(
        generator, PARTITIONERS[partitioner_name], N, UNIVERSE, PARAMS.k, seed=37
    )
    protocol = QuantileProtocol(PARAMS, phi=0.5)
    report = audit_quantile_protocol(protocol, stream, checkpoint_every=300)
    assert report.ok, report.violations[:3]


@pytest.mark.parametrize("partitioner_name", PARTITIONERS)
@pytest.mark.parametrize("generator", [uniform_stream, zipf_stream])
def test_all_quantiles_guarantee(partitioner_name, generator):
    kwargs = {"skew": 1.2} if generator is zipf_stream else {}
    stream = make_stream(
        generator,
        PARTITIONERS[partitioner_name],
        N,
        UNIVERSE,
        PARAMS.k,
        seed=41,
        **kwargs,
    )
    protocol = AllQuantilesProtocol(PARAMS)
    probes = [1, 100, 1000, 2048, 4000]
    report = audit_rank_protocol(
        protocol, stream, probe_values=probes, checkpoint_every=300
    )
    assert report.ok, report.violations[:3]
