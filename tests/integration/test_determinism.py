"""Determinism: identical runs must produce identical communication."""

from __future__ import annotations

from repro.common.params import TrackingParams
from repro.core.all_quantiles import AllQuantilesProtocol
from repro.core.heavy_hitters import HeavyHitterProtocol
from repro.core.quantile import QuantileProtocol
from repro.workloads import make_stream, round_robin_partitioner, uniform_stream

UNIVERSE = 1 << 10


def run_twice(factory):
    stream = make_stream(
        uniform_stream, round_robin_partitioner, 4_000, UNIVERSE, 4, seed=77
    )
    outcomes = []
    for _ in range(2):
        protocol = factory()
        protocol.process_stream(stream)
        outcomes.append(
            (
                protocol.stats.messages,
                protocol.stats.words,
                dict(protocol.stats.by_kind),
            )
        )
    return outcomes


def test_heavy_hitter_deterministic():
    params = TrackingParams(num_sites=4, epsilon=0.1, universe_size=UNIVERSE)
    a, b = run_twice(lambda: HeavyHitterProtocol(params))
    assert a == b


def test_quantile_deterministic():
    params = TrackingParams(num_sites=4, epsilon=0.1, universe_size=UNIVERSE)
    a, b = run_twice(lambda: QuantileProtocol(params, phi=0.5))
    assert a == b


def test_all_quantiles_deterministic():
    params = TrackingParams(num_sites=4, epsilon=0.1, universe_size=UNIVERSE)
    a, b = run_twice(lambda: AllQuantilesProtocol(params))
    assert a == b
