"""Hypothesis-driven end-to-end audits: random small streams, random site
assignments — the guarantees must hold for every generated input, not just
the curated workloads."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.params import TrackingParams
from repro.core.all_quantiles import AllQuantilesProtocol
from repro.core.heavy_hitters import HeavyHitterProtocol
from repro.core.quantile import QuantileProtocol
from repro.oracle import ExactTracker

UNIVERSE = 64
PARAMS = TrackingParams(num_sites=3, epsilon=0.15, universe_size=UNIVERSE)

arrival_lists = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2),
        st.integers(min_value=1, max_value=UNIVERSE),
    ),
    min_size=60,
    max_size=400,
)


@settings(max_examples=30, deadline=None)
@given(arrivals=arrival_lists)
def test_heavy_hitters_contract_on_random_streams(arrivals):
    protocol = HeavyHitterProtocol(PARAMS)
    oracle = ExactTracker(UNIVERSE)
    for site_id, item in arrivals:
        protocol.process(site_id, item)
        oracle.update(item)
    reported = protocol.heavy_hitters(phi=0.3)
    missed, spurious = oracle.heavy_hitter_violations(reported, 0.3, 0.15)
    assert not missed
    assert not spurious


@settings(max_examples=30, deadline=None)
@given(arrivals=arrival_lists)
def test_median_contract_on_random_streams(arrivals):
    protocol = QuantileProtocol(PARAMS, phi=0.5)
    oracle = ExactTracker(UNIVERSE)
    for site_id, item in arrivals:
        protocol.process(site_id, item)
        oracle.update(item)
    offset = oracle.quantile_rank_offset(protocol.quantile(), 0.5)
    assert offset <= PARAMS.epsilon


@settings(max_examples=20, deadline=None)
@given(arrivals=arrival_lists)
def test_rank_contract_on_random_streams(arrivals):
    protocol = AllQuantilesProtocol(PARAMS)
    oracle = ExactTracker(UNIVERSE)
    for site_id, item in arrivals:
        protocol.process(site_id, item)
        oracle.update(item)
    for probe in (1, 16, 32, 48, UNIVERSE):
        error = abs(protocol.rank(probe) - oracle.rank_leq(probe))
        assert error <= PARAMS.epsilon * oracle.total + 1
