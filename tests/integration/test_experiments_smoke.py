"""Smoke-run the cheap experiments end to end (the slow ones run as
benchmarks; see benchmarks/)."""

from __future__ import annotations

import pytest

from repro.harness import run_experiment


@pytest.mark.parametrize("experiment_id", ["E5", "E8", "E9", "E10", "A1"])
def test_experiment_runs_and_renders(experiment_id):
    result = run_experiment(experiment_id, quick=True)
    assert result.rows
    rendered = result.render()
    assert experiment_id in rendered
    assert "paper claim" in rendered


def test_e9_reports_zero_violations():
    result = run_experiment("E9", quick=True)
    violations_column = result.headers.index("violations")
    assert all(row[violations_column] == 0 for row in result.rows)
