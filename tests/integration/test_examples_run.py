"""Every shipped example must run end to end without error.

These double as realistic integration scenarios; runtimes are kept modest
by the examples' own parameter choices.
"""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parents[2] / "examples").glob("*.py")
)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(path, capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", [str(path)])
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{path.name} printed nothing"
