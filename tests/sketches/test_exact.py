"""Exact summary implementations (reference behaviour)."""

from __future__ import annotations

import pytest

from repro.sketches.exact import ExactFrequency, ExactQuantile


class TestExactFrequency:
    def test_counts(self):
        sketch = ExactFrequency()
        sketch.insert(3, 2)
        sketch.insert(5)
        assert sketch.estimate(3) == 2
        assert sketch.estimate(5) == 1
        assert sketch.estimate(99) == 0
        assert sketch.count == 3
        assert sketch.error_bound() == 0.0

    def test_heavy_hitters(self):
        sketch = ExactFrequency()
        for item, weight in [(1, 10), (2, 3)]:
            sketch.insert(item, weight)
        assert sketch.heavy_hitters(5) == {1: 10}

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            ExactFrequency().insert(1, -1)

    def test_items_snapshot_is_copy(self):
        sketch = ExactFrequency()
        sketch.insert(1)
        snapshot = sketch.items()
        snapshot[1] = 999
        assert sketch.estimate(1) == 1


class TestExactQuantile:
    def test_rank_and_quantile(self):
        sketch = ExactQuantile(100)
        for item in [10, 20, 30, 40]:
            sketch.insert(item)
        assert sketch.rank(25) == 2
        assert sketch.quantile(0.5) == 20
        assert sketch.count == 4
        assert sketch.error_bound() == 0.0

    def test_range_count(self):
        sketch = ExactQuantile(100)
        for item in [10, 20, 30]:
            sketch.insert(item)
        assert sketch.range_count(15, 30) == 2
