"""Reservoir sampling tests."""

from __future__ import annotations

import pytest

from repro.common.rng import make_rng
from repro.sketches.reservoir import ReservoirSample


class TestBasics:
    def test_fills_to_capacity(self):
        reservoir = ReservoirSample(5, rng=make_rng(0))
        for item in range(1, 4):
            reservoir.insert(item)
        assert sorted(reservoir.sample()) == [1, 2, 3]
        assert reservoir.count == 3

    def test_capacity_never_exceeded(self):
        reservoir = ReservoirSample(10, rng=make_rng(1))
        for item in range(1000):
            reservoir.insert(item + 1)
        assert len(reservoir.sample()) == 10
        assert reservoir.count == 1000

    def test_invalid_capacity(self):
        from repro.common.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            ReservoirSample(0)

    def test_uniformity_rough(self):
        """Each element should appear with probability ~capacity/n."""
        hits = 0
        trials = 400
        for seed in range(trials):
            reservoir = ReservoirSample(10, rng=make_rng(seed))
            for item in range(1, 101):
                reservoir.insert(item)
            if 1 in reservoir.sample():  # P = 10/100
                hits += 1
        assert 0.04 < hits / trials < 0.2

    def test_estimate_frequency(self):
        reservoir = ReservoirSample(50, rng=make_rng(2))
        for _ in range(60):
            reservoir.insert(7)
        for item in range(100, 140):
            reservoir.insert(item)
        estimate = reservoir.estimate_frequency(7)
        assert 20 <= estimate <= 100  # true 60 out of 100

    def test_quantile_of_empty_raises(self):
        with pytest.raises(IndexError):
            ReservoirSample(4).estimate_quantile(0.5)

    def test_quantile_estimate(self):
        reservoir = ReservoirSample(200, rng=make_rng(3))
        for item in range(1, 101):
            reservoir.insert(item)
        assert abs(reservoir.estimate_quantile(0.5) - 50) <= 2
