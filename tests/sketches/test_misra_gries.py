"""Misra–Gries sketch tests: error bound and underestimate property."""

from __future__ import annotations

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError
from repro.sketches.misra_gries import MisraGriesSketch


class TestBasics:
    def test_capacity(self):
        assert MisraGriesSketch(0.1).capacity == 10
        assert MisraGriesSketch(0.5).capacity == 2

    def test_invalid_epsilon(self):
        with pytest.raises(ConfigurationError):
            MisraGriesSketch(0.0)
        with pytest.raises(ConfigurationError):
            MisraGriesSketch(1.5)

    def test_exact_when_few_distinct(self):
        sketch = MisraGriesSketch(0.25)  # 4 counters
        for item, weight in [(1, 5), (2, 3), (3, 2)]:
            sketch.insert(item, weight)
        assert sketch.estimate(1) == 5
        assert sketch.estimate(2) == 3
        assert sketch.estimate(3) == 2
        assert sketch.count == 10

    def test_eviction_decrements(self):
        sketch = MisraGriesSketch(0.5)  # 2 counters
        sketch.insert(1)
        sketch.insert(2)
        sketch.insert(3)  # decrement-all
        assert sketch.estimate(3) == 0
        assert sketch.count == 3

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            MisraGriesSketch(0.5).insert(1, -1)

    def test_zero_weight_noop(self):
        sketch = MisraGriesSketch(0.5)
        sketch.insert(1, 0)
        assert sketch.count == 0

    def test_heavy_hitters(self):
        sketch = MisraGriesSketch(0.1)
        for _ in range(60):
            sketch.insert(7)
        for item in range(100, 140):
            sketch.insert(item)
        hitters = sketch.heavy_hitters(threshold=30)
        assert 7 in hitters

    def test_never_more_than_capacity_counters(self):
        sketch = MisraGriesSketch(0.2)
        for item in range(1000):
            sketch.insert(item % 37 + 1)
        assert len(sketch.items()) <= sketch.capacity


@settings(max_examples=100, deadline=None)
@given(
    epsilon=st.sampled_from([0.5, 0.25, 0.1]),
    items=st.lists(
        st.integers(min_value=1, max_value=30), min_size=1, max_size=400
    ),
)
def test_error_bound_property(epsilon, items):
    """Estimates never overcount and undercount by at most eps * n."""
    sketch = MisraGriesSketch(epsilon)
    for item in items:
        sketch.insert(item)
    truth = Counter(items)
    n = len(items)
    for item, true_count in truth.items():
        estimate = sketch.estimate(item)
        assert estimate <= true_count
        assert true_count - estimate <= epsilon * n + 1e-9
