"""SpaceSaving sketch tests: overestimate property and coverage guarantee."""

from __future__ import annotations

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketches.spacesaving import SpaceSavingSketch


class TestBasics:
    def test_exact_when_under_capacity(self):
        sketch = SpaceSavingSketch(0.25)
        for item, weight in [(1, 4), (2, 2)]:
            sketch.insert(item, weight)
        assert sketch.estimate(1) == 4
        assert sketch.estimate(2) == 2
        assert sketch.error_bound() == 0.0

    def test_eviction_inherits_count(self):
        sketch = SpaceSavingSketch(0.99)  # single counter
        sketch.insert(1)
        sketch.insert(2)  # evicts 1, inherits its count
        assert sketch.estimate(2) == 2
        assert sketch.estimate(1) == 0
        assert sketch.guaranteed_count(2) == 1

    def test_monitored_set_bounded(self):
        sketch = SpaceSavingSketch(0.1)
        for item in range(1, 500):
            sketch.insert(item)
        assert len(sketch.items()) <= sketch.capacity

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            SpaceSavingSketch(0.5).insert(1, -2)

    def test_heavy_hitters_contains_frequent(self):
        sketch = SpaceSavingSketch(0.05)
        for _ in range(300):
            sketch.insert(42)
        for item in range(100, 400):
            sketch.insert(item)
        assert 42 in sketch.heavy_hitters(threshold=200)


@settings(max_examples=100, deadline=None)
@given(
    epsilon=st.sampled_from([0.5, 0.2, 0.1]),
    items=st.lists(
        st.integers(min_value=1, max_value=40), min_size=1, max_size=500
    ),
)
def test_overestimate_with_bounded_error(epsilon, items):
    """freq(x) <= estimate(x) <= freq(x) + eps*n for every monitored x,
    and every item above eps*n is monitored."""
    sketch = SpaceSavingSketch(epsilon)
    for item in items:
        sketch.insert(item)
    truth = Counter(items)
    n = len(items)
    monitored = sketch.items()
    for item, estimate in monitored.items():
        assert estimate >= truth[item]
        assert estimate - truth[item] <= n / sketch.capacity + 1e-9
        assert sketch.guaranteed_count(item) <= truth[item]
    for item, true_count in truth.items():
        if true_count > n / sketch.capacity:
            assert item in monitored
