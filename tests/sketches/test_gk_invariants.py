"""Greenwald–Khanna internal invariants (beyond black-box rank error)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketches.gk import GKQuantileSketch


@settings(max_examples=60, deadline=None)
@given(
    items=st.lists(
        st.integers(min_value=1, max_value=500), min_size=1, max_size=500
    )
)
def test_g_sums_to_count(items):
    """The g fields always sum to the number of inserted items."""
    sketch = GKQuantileSketch(0.1)
    for item in items:
        sketch.insert(item)
    assert sum(g for _v, g, _d in sketch.merged_values()) == len(items)


@settings(max_examples=60, deadline=None)
@given(
    items=st.lists(
        st.integers(min_value=1, max_value=500), min_size=2, max_size=500
    )
)
def test_band_invariant(items):
    """Classic GK invariant: g_i + delta_i <= 2*eps*n (+1 slack for the
    integer threshold floor)."""
    epsilon = 0.1
    sketch = GKQuantileSketch(epsilon)
    for item in items:
        sketch.insert(item)
    n = len(items)
    cap = max(1, int(2 * epsilon * n))
    for _value, g, delta in sketch.merged_values():
        assert g + delta <= cap + 1


@settings(max_examples=60, deadline=None)
@given(
    items=st.lists(
        st.integers(min_value=1, max_value=500), min_size=1, max_size=500
    )
)
def test_values_sorted_and_extremes_kept(items):
    sketch = GKQuantileSketch(0.1)
    for item in items:
        sketch.insert(item)
    values = [v for v, _g, _d in sketch.merged_values()]
    assert values == sorted(values)
    assert values[0] == min(items)
    assert values[-1] == max(items)


def test_near_monotone_rank():
    """rank() estimates use uncertainty-window midpoints, so they need not
    be strictly monotone — but any decrease is bounded by the eps*n error
    budget, and the endpoints are exact."""
    epsilon = 0.05
    sketch = GKQuantileSketch(epsilon)
    import random

    rng = random.Random(3)
    n = 2000
    for _ in range(n):
        sketch.insert(rng.randint(1, 1000))
    ranks = [sketch.rank(probe) for probe in range(0, 1001, 25)]
    for previous, current in zip(ranks, ranks[1:]):
        assert current >= previous - 2 * epsilon * n
    assert ranks[0] == 0
    assert ranks[-1] == n
