"""Count–Min sketch tests."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.common.rng import make_rng
from repro.sketches.countmin import CountMinSketch


class TestBasics:
    def test_shape(self):
        sketch = CountMinSketch(0.01, delta=0.01)
        depth, width = sketch.shape
        assert width >= 100
        assert depth >= 4

    def test_never_undercounts(self):
        sketch = CountMinSketch(0.05, rng=make_rng(1))
        items = [1, 1, 2, 3, 3, 3, 50, 50]
        for item in items:
            sketch.insert(item)
        truth = Counter(items)
        for item, count in truth.items():
            assert sketch.estimate(item) >= count

    def test_error_within_bound_typically(self):
        sketch = CountMinSketch(0.01, rng=make_rng(2))
        rng = make_rng(3)
        items = rng.integers(1, 1000, size=5000).tolist()
        for item in items:
            sketch.insert(item)
        truth = Counter(items)
        overshoots = [
            sketch.estimate(item) - count for item, count in truth.items()
        ]
        assert max(overshoots) <= 0.01 * len(items) * 3  # generous slack

    def test_weighted_insert(self):
        sketch = CountMinSketch(0.1)
        sketch.insert(9, 100)
        assert sketch.estimate(9) >= 100
        assert sketch.count == 100

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            CountMinSketch(0.1).insert(1, -5)

    def test_invalid_delta(self):
        with pytest.raises(ValueError):
            CountMinSketch(0.1, delta=0)

    def test_enumeration_not_supported(self):
        with pytest.raises(NotImplementedError):
            CountMinSketch(0.1).heavy_hitters(10)

    def test_heavy_hitters_from_candidates(self):
        sketch = CountMinSketch(0.05, rng=make_rng(4))
        for _ in range(100):
            sketch.insert(77)
        sketch.insert(5)
        hitters = sketch.heavy_hitters_from([77, 5], threshold=50)
        assert 77 in hitters
        assert 5 not in hitters
