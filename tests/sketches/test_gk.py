"""Greenwald–Khanna sketch tests: rank error bound and compression."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketches.gk import GKQuantileSketch


class TestBasics:
    def test_empty(self):
        sketch = GKQuantileSketch(0.1)
        assert sketch.count == 0
        assert sketch.rank(5) == 0
        with pytest.raises(IndexError):
            sketch.quantile(0.5)

    def test_single_item(self):
        sketch = GKQuantileSketch(0.1)
        sketch.insert(42)
        assert sketch.rank(41) == 0
        assert sketch.rank(42) == 1
        assert sketch.quantile(0.5) == 42

    def test_sorted_insertion_ranks(self):
        sketch = GKQuantileSketch(0.05)
        for item in range(1, 101):
            sketch.insert(item)
        for probe in [10, 50, 90]:
            assert abs(sketch.rank(probe) - probe) <= 0.05 * 100 + 1

    def test_invalid_phi(self):
        sketch = GKQuantileSketch(0.1)
        sketch.insert(1)
        with pytest.raises(ValueError):
            sketch.quantile(1.5)

    def test_compression_keeps_size_small(self):
        sketch = GKQuantileSketch(0.05)
        for item in range(1, 5001):
            sketch.insert(item)
        # O(1/eps * log(eps n)) with small constants; generous cap.
        assert sketch.tuple_count < 3000
        assert sketch.tuple_count < sketch.count / 2

    def test_extremes_are_exact(self):
        sketch = GKQuantileSketch(0.1)
        for item in [5, 2, 9, 1, 7, 3, 8]:
            sketch.insert(item)
        assert sketch.quantile(0.0) in (1, 2)
        assert sketch.rank(0) == 0
        assert sketch.rank(9) == sketch.count


@settings(max_examples=60, deadline=None)
@given(
    epsilon=st.sampled_from([0.2, 0.1, 0.05]),
    items=st.lists(
        st.integers(min_value=1, max_value=1000), min_size=1, max_size=600
    ),
)
def test_rank_error_bound(epsilon, items):
    """|rank(x) - true_rank(x)| <= eps*n for any probe."""
    sketch = GKQuantileSketch(epsilon)
    for item in items:
        sketch.insert(item)
    n = len(items)
    ordered = sorted(items)
    for probe in [1, 250, 500, 750, 1000] + items[:5]:
        true_rank = sum(1 for value in ordered if value <= probe)
        assert abs(sketch.rank(probe) - true_rank) <= epsilon * n + 1


@settings(max_examples=60, deadline=None)
@given(
    items=st.lists(
        st.integers(min_value=1, max_value=1000), min_size=5, max_size=600
    ),
    phi=st.floats(min_value=0.0, max_value=1.0),
)
def test_quantile_error_bound(items, phi):
    """The returned quantile's true rank is within eps*n + 1 of phi*n."""
    epsilon = 0.1
    sketch = GKQuantileSketch(epsilon)
    for item in items:
        sketch.insert(item)
    n = len(items)
    value = sketch.quantile(phi)
    smaller = sum(1 for v in items if v < value)
    at_most = sum(1 for v in items if v <= value)
    target = phi * n
    # The rank window of the returned value must come within eps*n + 1.
    distance = max(smaller - target, target - at_most, 0)
    assert distance <= epsilon * n + 1
